"""Notification permission handling.

Models Chromium's ``PermissionContextBase`` with the paper's two
instrumentation points (``RequestPermission``/``PermissionDecided``), the
crawler's auto-grant policy, permission persistence per origin, the JS
"double permission" pre-prompt some sites adopted, and Chrome 80's quiet
notification UI (which the paper found blocked none of its revisited sites,
for lack of crowd opt-in data).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.browser.events import EventKind, EventLog
from repro.webenv.website import Website


@dataclass(frozen=True)
class QuietUiPolicy:
    """Chrome 80's quieter permission UI model.

    The real feature suppresses prompts from origins with a low crowd-sourced
    notification opt-in rate; it only acts on origins for which Chrome has
    collected data. ``crowd_coverage`` is the probability an origin has such
    data (the paper's April 2020 test behaved as coverage ~ 0).
    """

    enabled: bool = False
    optin_threshold: float = 0.10
    crowd_coverage: float = 0.0

    def suppresses(self, site: Website, has_crowd_data: bool) -> bool:
        if not self.enabled or not has_crowd_data:
            return False
        return site.opt_in_rate < self.optin_threshold


class PermissionManager:
    """Per-origin notification permission state + instrumentation hooks."""

    GRANTED = "granted"
    DENIED = "denied"
    SUPPRESSED = "suppressed"  # quiet UI swallowed the prompt

    def __init__(
        self,
        event_log: EventLog,
        auto_grant: bool = True,
        interact_with_double_prompts: bool = True,
        quiet_ui: Optional[QuietUiPolicy] = None,
    ):
        self._log = event_log
        self._auto_grant = auto_grant
        self._interact_double = interact_with_double_prompts
        self._quiet_ui = quiet_ui or QuietUiPolicy()
        self._decisions: Dict[str, str] = {}

    def state(self, origin: str) -> Optional[str]:
        """Persisted decision for an origin, if any."""
        return self._decisions.get(origin)

    def request_permission(
        self, site: Website, now_min: float, has_crowd_data: bool = False
    ) -> str:
        """Run a site's permission request through the full prompt flow.

        Returns the resulting decision. Decisions persist per origin across
        visits and browser restarts, as in real browsers.
        """
        origin = site.url.origin
        existing = self._decisions.get(origin)
        if existing is not None:
            return existing

        # Double-permission pre-prompt: a JS dialog shown *before* the real
        # browser prompt; if the crawler refuses to interact with it, the
        # browser prompt never fires.
        if site.double_permission:
            self._log.emit(
                EventKind.DOUBLE_PERMISSION_PROMPT, now_min, origin=origin
            )
            if not self._interact_double:
                return self.DENIED

        self._log.emit(
            EventKind.PERMISSION_REQUESTED,
            now_min,
            origin=origin,
            url=str(site.url),
            seed_keyword=site.seed_keyword,
        )

        if self._quiet_ui.suppresses(site, has_crowd_data):
            decision = self.SUPPRESSED
        elif self._auto_grant:
            decision = self.GRANTED
        else:
            decision = self.DENIED

        self._decisions[origin] = decision
        self._log.emit(
            EventKind.PERMISSION_DECIDED,
            now_min,
            origin=origin,
            decision=decision,
        )
        return decision

    def revoke(self, origin: str) -> None:
        """User revokes the permission in settings (rarely exercised)."""
        self._decisions.pop(origin, None)

    @property
    def granted_origins(self) -> Dict[str, str]:
        return {o: d for o, d in self._decisions.items() if d == self.GRANTED}
