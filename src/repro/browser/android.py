"""Android environment: OS notification tray + accessibility automation.

On Android, WPNs are displayed by the OS (not the browser), and the paper
automates interaction with a privileged Accessibility Service app that
swipes down the tray and taps every notification, while browser logs stream
out over ADB logcat. We model the tray, the accessibility service, and the
logcat channel so the mobile crawl path is structurally distinct from the
desktop one, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.browser.browser import ClickOutcome, InstrumentedBrowser
from repro.browser.events import BrowserEvent
from repro.browser.notifications import WebNotification


class AndroidNotificationTray:
    """The OS notification shade: holds WPNs until something taps them."""

    def __init__(self):
        self._pending: List[WebNotification] = []
        self._listeners: List[Callable[[WebNotification], None]] = []

    def post(self, notification: WebNotification) -> None:
        """OS receives a notification; fires TYPE_NOTIFICATION_STATE_CHANGED."""
        self._pending.append(notification)
        for listener in self._listeners:
            listener(notification)

    def on_state_changed(
        self, listener: Callable[[WebNotification], None]
    ) -> None:
        """Register an accessibility-event listener."""
        self._listeners.append(listener)

    def take_pending(self) -> List[WebNotification]:
        """Remove and return everything currently in the shade."""
        pending, self._pending = self._pending, []
        return pending

    def __len__(self) -> int:
        return len(self._pending)


class AccessibilityService:
    """The automation app: taps every notification that appears."""

    def __init__(self, tray: AndroidNotificationTray):
        self._tray = tray
        self.taps = 0
        tray.on_state_changed(self._on_notification)
        self._queue: List[WebNotification] = []

    def _on_notification(self, notification: WebNotification) -> None:
        self._queue.append(notification)

    def drain(
        self, browser: InstrumentedBrowser, now_min: float, click_delay_min: float
    ) -> List[ClickOutcome]:
        """Swipe down and tap each queued notification, in arrival order."""
        outcomes = []
        self._tray.take_pending()
        queue, self._queue = self._queue, []
        for notification in queue:
            self.taps += 1
            outcomes.append(
                browser.click_notification(
                    notification, now_min + click_delay_min
                )
            )
        return outcomes


class AdbLogcat:
    """The ADB logcat channel mirroring browser events off the device."""

    def __init__(self):
        self.lines: List[str] = []

    def write_event(self, event: BrowserEvent) -> None:
        payload = " ".join(f"{k}={v}" for k, v in sorted(event.data.items()))
        self.lines.append(
            f"[{event.time_min:10.2f}] chromium/{event.kind}: {payload}"
        )


@dataclass
class AndroidDevice:
    """A physical Android device running the instrumented browser.

    The browser posts notifications to the OS tray; the accessibility
    service taps them; logcat mirrors every instrumentation event.
    """

    browser: InstrumentedBrowser
    tray: AndroidNotificationTray = field(default_factory=AndroidNotificationTray)
    logcat: AdbLogcat = field(default_factory=AdbLogcat)
    accessibility: Optional[AccessibilityService] = None

    def __post_init__(self):
        if self.browser.platform != "mobile":
            raise ValueError("AndroidDevice requires a mobile-platform browser")
        if self.accessibility is None:
            self.accessibility = AccessibilityService(self.tray)

    def receive_push(self, delivery, now_min: float) -> WebNotification:
        """Push arrives: SW shows it, the OS tray gets it."""
        notification = self.browser.receive_push(delivery, now_min)
        self.tray.post(notification)
        return notification

    def auto_interact(self, now_min: float, click_delay_min: float) -> List[ClickOutcome]:
        """Let the accessibility service tap everything pending."""
        outcomes = self.accessibility.drain(
            self.browser, now_min, click_delay_min
        )
        self.sync_logcat()
        return outcomes

    def sync_logcat(self) -> None:
        """Mirror all browser events collected so far to the log channel."""
        self.logcat.lines.clear()
        for event in self.browser.events:
            self.logcat.write_event(event)
