"""Notification display: the browser's message center.

Models Chromium's ``MessageCenterNotificationManager::Add`` (where the
paper's instrumentation hooks the display and schedules an automatic
``WebNotificationDelegate::Click``) and the ``showNotification`` call that
records title/body/icon/target metadata.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional

from repro.browser.events import EventKind, EventLog
from repro.browser.service_worker import ServiceWorkerRegistration
from repro.push.fcm import PushDelivery


@dataclass(frozen=True)
class WebNotification:
    """A displayed web push notification and its provenance."""

    notification_id: str
    title: str
    body: str
    icon_url: str
    sw_registration: ServiceWorkerRegistration
    delivery: PushDelivery
    shown_at_min: float
    actions: tuple = ()   # custom action-button labels, if any

    @property
    def source_origin(self) -> str:
        return self.sw_registration.origin


class NotificationCenter:
    """Displays notifications and propagates (automated) clicks."""

    def __init__(self, event_log: EventLog):
        self._log = event_log
        self._counter = itertools.count(1)
        self._shown: List[WebNotification] = []
        self._clicked_ids: set = set()

    @property
    def shown(self) -> List[WebNotification]:
        return list(self._shown)

    def show(
        self,
        sw_registration: ServiceWorkerRegistration,
        delivery: PushDelivery,
        now_min: float,
    ) -> WebNotification:
        """``showNotification`` hook: display + log the full metadata."""
        creative = delivery.creative
        icon_name = creative.icon_brand or f"push-{creative.family_name}"
        notification = WebNotification(
            notification_id=f"ntf{next(self._counter):07d}",
            title=creative.title,
            body=creative.body,
            icon_url=f"{sw_registration.origin}/icons/{icon_name}.png",
            sw_registration=sw_registration,
            delivery=delivery,
            shown_at_min=now_min,
            actions=tuple(creative.actions),
        )
        self._shown.append(notification)
        self._log.emit(
            EventKind.NOTIFICATION_SHOWN,
            now_min,
            notification_id=notification.notification_id,
            sw_id=sw_registration.sw_id,
            origin=sw_registration.origin,
            title=creative.title,
            body=creative.body,
            icon_url=notification.icon_url,
            actions=list(notification.actions),
        )
        return notification

    def click(self, notification: WebNotification, now_min: float) -> None:
        """``WebNotificationDelegate::Click`` hook (the automated click)."""
        if notification.notification_id in self._clicked_ids:
            raise ValueError(
                f"notification {notification.notification_id} already clicked"
            )
        self._clicked_ids.add(notification.notification_id)
        self._log.emit(
            EventKind.NOTIFICATION_CLICKED,
            now_min,
            notification_id=notification.notification_id,
            origin=notification.source_origin,
        )

    def click_action(
        self, notification: WebNotification, action_index: int, now_min: float
    ) -> str:
        """A click on one of the notification's custom action buttons.

        Returns the action label; the SW's ``notificationclick`` handler
        receives the action name in the real API.
        """
        if not 0 <= action_index < len(notification.actions):
            raise IndexError(
                f"notification {notification.notification_id} has "
                f"{len(notification.actions)} actions; index {action_index} invalid"
            )
        if notification.notification_id in self._clicked_ids:
            raise ValueError(
                f"notification {notification.notification_id} already clicked"
            )
        self._clicked_ids.add(notification.notification_id)
        label = notification.actions[action_index]
        self._log.emit(
            EventKind.NOTIFICATION_ACTION_CLICKED,
            now_min,
            notification_id=notification.notification_id,
            origin=notification.source_origin,
            action=label,
        )
        return label

    def close(self, notification: WebNotification, now_min: float) -> None:
        """The user dismisses the notification without clicking it."""
        if notification.notification_id in self._clicked_ids:
            raise ValueError(
                f"notification {notification.notification_id} already clicked"
            )
        self._clicked_ids.add(notification.notification_id)
        self._log.emit(
            EventKind.NOTIFICATION_CLOSED,
            now_min,
            notification_id=notification.notification_id,
            origin=notification.source_origin,
        )

    def was_clicked(self, notification: WebNotification) -> bool:
        return notification.notification_id in self._clicked_ids
