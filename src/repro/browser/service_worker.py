"""Service worker runtime.

A service worker is registered against an origin, subscribes to push, and
handles two events the instrumentation cares about: ``push`` (which calls
``showNotification``) and ``notificationclick`` (which pings the ad server
and opens the landing navigation). SW-issued network requests are logged
separately from page requests — that distinction is what makes Table 6
possible (extensions cannot see SW requests at all).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional

from repro.browser.events import EventKind, EventLog
from repro.browser.network import NetworkRequest
from repro.push.fcm import PushDelivery
from repro.util.urls import Url

#: Share of publisher embeds still running a legacy SDK revision.
LEGACY_SDK_RATE = 0.03


def _is_legacy_embed(origin: str, network_name: str) -> bool:
    """Origin-stable draw: did this publisher ever upgrade its embed?"""
    import hashlib

    digest = hashlib.blake2b(
        f"legacy|{network_name}|{origin}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2**64 < LEGACY_SDK_RATE


def _api_host(serving_domain: str, legacy: bool) -> str:
    return f"legacy-api.{serving_domain}" if legacy else f"api.{serving_domain}"


@dataclass(frozen=True)
class ServiceWorkerRegistration:
    """One registered service worker: origin + the script it runs.

    ``legacy_sdk`` marks publishers still embedding an old SDK revision
    whose API endpoints (``legacy-api.<network>``) crowd-sourced filter
    lists eventually learned — the only slice of push traffic EasyList
    catches (Table 6's "less than 2%").
    """

    sw_id: str
    origin: str
    scope_url: str            # page URL that registered it
    script_url: str           # where the SW code was fetched from
    network_name: Optional[str]  # ad network controlling it, if any
    registered_at_min: float
    legacy_sdk: bool = False

    @property
    def is_ad_sw(self) -> bool:
        return self.network_name is not None


class ServiceWorkerRuntime:
    """Executes SW event handlers and logs their observable side effects."""

    def __init__(self, event_log: EventLog, network_domains: dict):
        self._log = event_log
        self._network_domains = dict(network_domains)
        self._counter = itertools.count(1)
        self._registrations: List[ServiceWorkerRegistration] = []

    @property
    def registrations(self) -> List[ServiceWorkerRegistration]:
        return list(self._registrations)

    def register(
        self,
        origin: str,
        scope_url: str,
        network_name: Optional[str],
        now_min: float,
    ) -> ServiceWorkerRegistration:
        """Register a SW for the origin (ad-network SW or the site's own).

        Ad-network SWs are served from the publisher origin (same-origin
        rule) but import the network's code; the script URL encodes both,
        which is what EasyList-style rules get to match against.
        """
        legacy = False
        if network_name is not None:
            serving = self._network_domains.get(network_name)
            if serving is None:
                raise KeyError(f"unknown ad network: {network_name!r}")
            stem = serving.split(".")[0]
            script_url = f"{origin}/sw/{stem}-push-sw.js"
            # A small, origin-stable slice of publishers never upgraded
            # their embed; their SWs still talk to the legacy API hosts.
            legacy = _is_legacy_embed(origin, network_name)
        else:
            script_url = f"{origin}/sw.js"
        registration = ServiceWorkerRegistration(
            sw_id=f"sw{next(self._counter):06d}",
            origin=origin,
            scope_url=scope_url,
            script_url=script_url,
            network_name=network_name,
            registered_at_min=now_min,
            legacy_sdk=legacy,
        )
        self._registrations.append(registration)
        self._log.emit(
            EventKind.SW_REGISTERED,
            now_min,
            sw_id=registration.sw_id,
            origin=origin,
            scope_url=scope_url,
            script_url=script_url,
            network=network_name,
        )
        return registration

    def handle_push(
        self, registration: ServiceWorkerRegistration, delivery: PushDelivery,
        now_min: float,
    ) -> List[NetworkRequest]:
        """The SW's ``push`` handler: may fetch ad config before showing.

        Returns the SW-issued network requests (empty for site-own alerts,
        which carry their payload inline).
        """
        requests: List[NetworkRequest] = []
        if registration.network_name is not None:
            serving = self._network_domains[registration.network_name]
            request = NetworkRequest(
                url=Url(
                    host=_api_host(serving, registration.legacy_sdk),
                    path="/v1/ad/resolve",
                    query=f"reg={delivery.subscription.registration_id}",
                ),
                initiator="service_worker",
                sw_script_url=registration.script_url,
                purpose="ad_resolve",
            )
            requests.append(request)
            self._emit_sw_request(request, now_min)
        return requests

    def handle_notification_click(
        self, registration: ServiceWorkerRegistration, now_min: float
    ) -> List[NetworkRequest]:
        """The SW's ``notificationclick`` handler: click-tracking ping."""
        requests: List[NetworkRequest] = []
        if registration.network_name is not None:
            serving = self._network_domains[registration.network_name]
            request = NetworkRequest(
                url=Url(
                    host=_api_host(serving, registration.legacy_sdk),
                    path="/v1/click/report",
                    query="evt=notification_click",
                ),
                initiator="service_worker",
                sw_script_url=registration.script_url,
                purpose="click_tracking",
            )
            requests.append(request)
            self._emit_sw_request(request, now_min)
        return requests

    def _emit_sw_request(self, request: NetworkRequest, now_min: float) -> None:
        self._log.emit(
            EventKind.SW_NETWORK_REQUEST,
            now_min,
            url=str(request.url),
            sw_script_url=request.sw_script_url,
            purpose=request.purpose,
        )
