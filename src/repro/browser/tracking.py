"""Cross-session tracking by ad networks.

Paper section 8 ("Evading Crawling Detection"): a few ad networks use
cookies or device fingerprints to recognize a browser across sessions, and
a recognized browser is much less likely to be shown a fresh notification
permission prompt. The paper's mitigation is one Docker container (fresh
profile) per visited URL; this module models the tracking so that design
choice is measurable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Set


@dataclass
class CookieJar:
    """Per-browser-profile cookie store (ad-network trackers only)."""

    trackers: Set[str] = field(default_factory=set)

    def has_tracker(self, network_name: str) -> bool:
        return network_name in self.trackers

    def set_tracker(self, network_name: str) -> None:
        self.trackers.add(network_name)

    def clear(self) -> None:
        self.trackers.clear()

    def __len__(self) -> int:
        return len(self.trackers)


class CrossSessionTracker:
    """Decides whether a tracked profile still gets a permission prompt.

    ``tracking_networks`` are the networks that fingerprint browsers;
    ``reprompt_rate`` is the chance a recognized profile is prompted again
    (low: the network already knows this browser ignored or saw the offer).
    """

    def __init__(
        self,
        tracking_networks: Optional[Set[str]] = None,
        reprompt_rate: float = 0.25,
    ):
        if not 0.0 <= reprompt_rate <= 1.0:
            raise ValueError("reprompt_rate must be in [0, 1]")
        # The aggressive monetizers are the ones that bother fingerprinting.
        self.tracking_networks = (
            tracking_networks
            if tracking_networks is not None
            else {"Ad-Maven", "PopAds", "PropellerAds", "AdsTerra"}
        )
        self.reprompt_rate = reprompt_rate

    def allows_prompt(
        self, jar: CookieJar, network_names, rng: random.Random
    ) -> bool:
        """Would the site's network(s) still prompt this profile?"""
        tracked = [
            n for n in network_names
            if n in self.tracking_networks and jar.has_tracker(n)
        ]
        if not tracked:
            return True
        return rng.random() < self.reprompt_rate

    def record_visit(self, jar: CookieJar, network_names) -> None:
        """After a visit, tracking networks drop their identifier."""
        for name in network_names:
            if name in self.tracking_networks:
                jar.set_tracker(name)
