"""Browser network stack: request records and redirect following."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.browser.events import EventKind, EventLog
from repro.webenv.landing import RedirectChain
from repro.util.urls import Url


@dataclass(frozen=True)
class NetworkRequest:
    """One observed network request.

    ``initiator`` distinguishes requests issued by pages from those issued
    by service workers (only the former are visible to extensions in the
    browser generation the paper studied).
    """

    url: Url
    initiator: str                       # "page" | "service_worker"
    sw_script_url: Optional[str] = None  # set when initiator is a SW
    purpose: str = "navigation"          # navigation | redirect | ad_resolve | click_tracking

    def __post_init__(self):
        if self.initiator not in ("page", "service_worker"):
            raise ValueError(f"unknown initiator: {self.initiator!r}")
        if self.initiator == "service_worker" and not self.sw_script_url:
            raise ValueError("service worker requests must carry their script URL")


class NetworkStack:
    """Follows redirect chains, logging every hop."""

    def __init__(self, event_log: EventLog):
        self._log = event_log
        self._requests: List[NetworkRequest] = []

    @property
    def requests(self) -> List[NetworkRequest]:
        return list(self._requests)

    def record(self, request: NetworkRequest, now_min: float) -> None:
        """Record a request that was issued outside of a navigation."""
        self._requests.append(request)

    def navigate(self, url: Url, now_min: float) -> None:
        """A top-level page navigation request."""
        request = NetworkRequest(url=url, initiator="page", purpose="navigation")
        self._requests.append(request)
        self._log.emit(EventKind.NAVIGATION, now_min, url=str(url))

    def follow_chain(self, chain: RedirectChain, now_min: float) -> Url:
        """Follow a click's redirect chain hop by hop; returns landing URL."""
        self.navigate(chain.click_url, now_min)
        for previous, target in zip(chain.hops, chain.hops[1:]):
            request = NetworkRequest(url=target, initiator="page", purpose="redirect")
            self._requests.append(request)
            self._log.emit(
                EventKind.REDIRECT,
                now_min,
                from_url=str(previous),
                to_url=str(target),
            )
        return chain.landing_url
