"""Instrumented browser model.

The paper instruments Chromium's C++ internals (``PermissionContextBase``,
``ServiceWorkerRegistrationNotifications::showNotification``,
``MessageCenterNotificationManager::Add`` and
``WebNotificationDelegate::Click``) to log and automate every step of the
WPN lifecycle. This package models the browser at exactly that hook
granularity: each hook emits a structured event into an event log that the
crawler's harvest step later mines.
"""

from repro.browser.events import BrowserEvent, EventKind, EventLog
from repro.browser.permissions import PermissionManager, QuietUiPolicy
from repro.browser.service_worker import ServiceWorkerRegistration, ServiceWorkerRuntime
from repro.browser.notifications import NotificationCenter, WebNotification
from repro.browser.network import NetworkRequest, NetworkStack
from repro.browser.browser import ClickOutcome, InstrumentedBrowser
from repro.browser.android import AccessibilityService, AndroidDevice, AndroidNotificationTray
from repro.browser.tracking import CookieJar, CrossSessionTracker

__all__ = [
    "BrowserEvent",
    "EventKind",
    "EventLog",
    "PermissionManager",
    "QuietUiPolicy",
    "ServiceWorkerRegistration",
    "ServiceWorkerRuntime",
    "NotificationCenter",
    "WebNotification",
    "NetworkRequest",
    "NetworkStack",
    "ClickOutcome",
    "InstrumentedBrowser",
    "AndroidDevice",
    "AndroidNotificationTray",
    "AccessibilityService",
    "CookieJar",
    "CrossSessionTracker",
]
