"""The instrumented browser: visit, subscribe, receive pushes, click.

One ``InstrumentedBrowser`` corresponds to one isolated browsing profile —
the crawler launches one per container/URL, exactly like the paper's
one-Docker-container-per-URL policy (which defeats ad-network cross-session
tracking).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.browser.events import EventKind, EventLog
from repro.browser.network import NetworkRequest, NetworkStack
from repro.browser.notifications import NotificationCenter, WebNotification
from repro.browser.permissions import PermissionManager, QuietUiPolicy
from repro.browser.service_worker import (
    ServiceWorkerRegistration,
    ServiceWorkerRuntime,
)
from repro.browser.tracking import CookieJar, CrossSessionTracker
from repro.push.fcm import FcmService, PushDelivery
from repro.push.subscription import PushSubscription
from repro.webenv.generator import WebEcosystem
from repro.webenv.landing import LandingPage, RedirectChain
from repro.webenv.website import Website


@dataclass(frozen=True)
class VisitResult:
    """What happened when the browser visited a URL."""

    site: Website
    decision: Optional[str]           # permission decision, if a prompt fired
    subscriptions: Tuple[PushSubscription, ...]


@dataclass(frozen=True)
class ClickOutcome:
    """Everything recorded for one automated notification click."""

    notification: WebNotification
    clicked_at_min: float
    sw_requests: Tuple[NetworkRequest, ...]
    chain: Optional[RedirectChain]
    landing_page: Optional[LandingPage]
    crashed: bool

    @property
    def valid(self) -> bool:
        """True when the click produced an analyzable landing page."""
        return self.landing_page is not None


class InstrumentedBrowser:
    """A single instrumented browsing profile on one platform."""

    def __init__(
        self,
        ecosystem: WebEcosystem,
        fcm: FcmService,
        rng: random.Random,
        platform: str = "desktop",
        quiet_ui: Optional[QuietUiPolicy] = None,
        event_log: Optional[EventLog] = None,
        tracker: Optional["CrossSessionTracker"] = None,
        cookie_jar: Optional["CookieJar"] = None,
    ):
        if platform not in ("desktop", "mobile"):
            raise ValueError(f"unknown platform: {platform!r}")
        self.platform = platform
        self.ecosystem = ecosystem
        self.fcm = fcm
        self.rng = rng
        self.events = event_log if event_log is not None else EventLog()
        self.permissions = PermissionManager(self.events, quiet_ui=quiet_ui)
        self.sw_runtime = ServiceWorkerRuntime(
            self.events, ecosystem.network_domains
        )
        self.notification_center = NotificationCenter(self.events)
        self.network = NetworkStack(self.events)
        self.tracker = tracker
        self.cookie_jar = cookie_jar if cookie_jar is not None else CookieJar()
        self._registration_by_endpoint: Dict[str, ServiceWorkerRegistration] = {}

    # ------------------------------------------------------------------
    # Visiting pages
    # ------------------------------------------------------------------
    def visit(self, site: Website, now_min: float) -> VisitResult:
        """Navigate to a site; auto-grant its permission prompt if any.

        A granted prompt registers the controlling service worker(s) and
        creates one push subscription per SW.
        """
        self.network.navigate(site.url, now_min)
        self.events.emit(
            EventKind.PAGE_RENDERED, now_min, url=str(site.url), page_kind=site.kind
        )
        if not site.requests_permission:
            return VisitResult(site=site, decision=None, subscriptions=())

        # Cross-session tracking (section 8): a profile the ad network has
        # already fingerprinted may simply never get the prompt again. The
        # crawler defeats this with a fresh profile per URL.
        if self.tracker is not None and site.kind == "publisher":
            allowed = self.tracker.allows_prompt(
                self.cookie_jar, site.network_names, self.rng
            )
            self.tracker.record_visit(self.cookie_jar, site.network_names)
            if not allowed:
                return VisitResult(site=site, decision=None, subscriptions=())

        prompt_at = now_min + site.permission_delay_min
        decision = self.permissions.request_permission(site, prompt_at)
        if decision != PermissionManager.GRANTED:
            return VisitResult(site=site, decision=decision, subscriptions=())

        subscriptions: List[PushSubscription] = []
        if site.kind == "publisher":
            for network_name in site.network_names:
                subscriptions.append(
                    self._register_and_subscribe(site, network_name, None, prompt_at)
                )
        elif site.kind == "alert":
            subscriptions.append(
                self._register_and_subscribe(site, None, site.alert_family, prompt_at)
            )
        return VisitResult(
            site=site, decision=decision, subscriptions=tuple(subscriptions)
        )

    def _register_and_subscribe(
        self,
        site: Website,
        network_name: Optional[str],
        alert_family: Optional[str],
        now_min: float,
    ) -> PushSubscription:
        registration = self.sw_runtime.register(
            origin=site.url.origin,
            scope_url=str(site.url),
            network_name=network_name,
            now_min=now_min,
        )
        subscription = self.fcm.subscribe(
            origin=site.url.origin,
            source_url=str(site.url),
            sw_script_url=registration.script_url,
            network_name=network_name,
            platform=self.platform,
            alert_family=alert_family,
            now_min=now_min,
        )
        self._registration_by_endpoint[subscription.endpoint] = registration
        self.events.emit(
            EventKind.SUBSCRIPTION_CREATED,
            now_min,
            endpoint=subscription.endpoint,
            origin=subscription.origin,
            network=network_name,
            alert_family=alert_family,
        )
        return subscription

    # ------------------------------------------------------------------
    # Push reception and clicks
    # ------------------------------------------------------------------
    def receive_push(
        self, delivery: PushDelivery, now_min: float
    ) -> WebNotification:
        """Route a delivered push to its SW, which shows the notification."""
        registration = self._registration_by_endpoint.get(
            delivery.subscription.endpoint
        )
        if registration is None:
            raise KeyError(
                f"no SW registered for endpoint {delivery.subscription.endpoint}"
            )
        self.sw_runtime.handle_push(registration, delivery, now_min)
        return self.notification_center.show(registration, delivery, now_min)

    def click_notification(
        self, notification: WebNotification, now_min: float
    ) -> ClickOutcome:
        """Automated click: SW click handler fires, navigation follows.

        With probability ``1 - valid_click_rate`` the resulting tab fails to
        produce an analyzable landing page (crash or no navigation), which
        the paper filtered out of its clustering dataset.
        """
        self.notification_center.click(notification, now_min)
        registration = notification.sw_registration
        sw_requests = tuple(
            self.sw_runtime.handle_notification_click(registration, now_min)
        )
        for request in sw_requests:
            self.network.record(request, now_min)

        creative = notification.delivery.creative
        valid_rate = (
            self.ecosystem.config.desktop_valid_click_rate
            if self.platform == "desktop"
            else self.ecosystem.config.mobile_valid_click_rate
        )
        if self.rng.random() >= valid_rate:
            self.events.emit(
                EventKind.TAB_CRASHED,
                now_min,
                notification_id=notification.notification_id,
            )
            return ClickOutcome(
                notification=notification,
                clicked_at_min=now_min,
                sw_requests=sw_requests,
                chain=None,
                landing_page=None,
                crashed=True,
            )

        chain, landing = self.ecosystem.resolve_click(
            creative, registration.network_name, rng=self.rng
        )
        self.network.follow_chain(chain, now_min)
        self.events.emit(
            EventKind.PAGE_RENDERED,
            now_min,
            url=str(landing.url),
            page_kind="landing",
            visual_hash=landing.visual_hash,
            requests_permission=landing.requests_permission,
        )
        return ClickOutcome(
            notification=notification,
            clicked_at_min=now_min,
            sw_requests=sw_requests,
            chain=chain,
            landing_page=landing,
            crashed=False,
        )
