"""Structured browser event log.

Every instrumentation hook appends one ``BrowserEvent``; the crawler's
harvest step reconstructs WPN records purely from this log, mirroring how
the paper's pipeline consumes its instrumented-Chromium logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List


class EventKind:
    """Event type constants (string enum kept simple for log readability)."""

    PERMISSION_REQUESTED = "permission_requested"
    PERMISSION_DECIDED = "permission_decided"
    DOUBLE_PERMISSION_PROMPT = "double_permission_prompt"
    SW_REGISTERED = "sw_registered"
    SW_NETWORK_REQUEST = "sw_network_request"
    SUBSCRIPTION_CREATED = "subscription_created"
    NOTIFICATION_SHOWN = "notification_shown"
    NOTIFICATION_CLICKED = "notification_clicked"
    NOTIFICATION_ACTION_CLICKED = "notification_action_clicked"
    NOTIFICATION_CLOSED = "notification_closed"
    NAVIGATION = "navigation"
    REDIRECT = "redirect"
    PAGE_RENDERED = "page_rendered"
    TAB_CRASHED = "tab_crashed"

    ALL = (
        PERMISSION_REQUESTED,
        PERMISSION_DECIDED,
        DOUBLE_PERMISSION_PROMPT,
        SW_REGISTERED,
        SW_NETWORK_REQUEST,
        SUBSCRIPTION_CREATED,
        NOTIFICATION_SHOWN,
        NOTIFICATION_CLICKED,
        NOTIFICATION_ACTION_CLICKED,
        NOTIFICATION_CLOSED,
        NAVIGATION,
        REDIRECT,
        PAGE_RENDERED,
        TAB_CRASHED,
    )


@dataclass(frozen=True)
class BrowserEvent:
    """One instrumentation record: kind, simulated time, free-form payload."""

    kind: str
    time_min: float
    data: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in EventKind.ALL:
            raise ValueError(f"unknown event kind: {self.kind!r}")


class EventLog:
    """Append-only in-memory event log with simple querying."""

    def __init__(self):
        self._events: List[BrowserEvent] = []

    def emit(self, kind: str, time_min: float, **data: Any) -> BrowserEvent:
        event = BrowserEvent(kind=kind, time_min=time_min, data=data)
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[BrowserEvent]:
        return iter(self._events)

    def of_kind(self, kind: str) -> List[BrowserEvent]:
        """All events of one kind, in emission order."""
        return [e for e in self._events if e.kind == kind]

    def count(self, kind: str) -> int:
        return sum(1 for e in self._events if e.kind == kind)

    def extend_from(self, other: "EventLog") -> None:
        """Merge another log (e.g. one container's) into this one."""
        self._events.extend(other._events)
