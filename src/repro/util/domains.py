"""Domain-name primitives: eTLD+1 extraction and the TLD pools.

The campaign-identification rule in the paper counts *effective second-level
domains* (eTLD+1) of WPN sources, so we carry a small public-suffix table
sufficient for every TLD the generator emits. These primitives live in
:mod:`repro.util` so the analysis pipeline (:mod:`repro.core`) can use them
without importing the simulated-web layer; :mod:`repro.webenv.domains`
re-exports them alongside the generator-side :class:`DomainFactory`.
"""

from __future__ import annotations

from typing import List, Set

# Multi-label public suffixes the generator can emit. A real system would use
# the full Mozilla PSL; the generator only ever produces hosts under these or
# under single-label TLDs, so this table is complete *for generated data*.
MULTI_LABEL_SUFFIXES: Set[str] = {
    "co.uk", "org.uk", "ac.uk", "com.au", "net.au", "co.in", "co.jp",
    "com.br", "com.cn", "com.tr", "co.za", "com.mx", "com.ar",
}

BENIGN_TLDS: List[str] = [
    "com", "com", "com", "com", "net", "org", "io", "co", "us",
    "co.uk", "de", "fr", "in", "com.au", "ca", "co.in", "com.br",
]

# TLD pool skewed toward the cheap registries malicious push campaigns favour.
SHADY_TLDS: List[str] = [
    "xyz", "club", "icu", "top", "site", "online", "live", "space",
    "website", "fun", "pw", "ru", "cn", "info", "buzz", "rest", "cam",
]


def effective_second_level_domain(host: str) -> str:
    """eTLD+1 of a host name.

    >>> effective_second_level_domain("ads.news.example.co.uk")
    'example.co.uk'
    >>> effective_second_level_domain("push.example.com")
    'example.com'
    """
    labels = host.lower().strip(".").split(".")
    if len(labels) <= 2:
        return ".".join(labels)
    if ".".join(labels[-2:]) in MULTI_LABEL_SUFFIXES:
        return ".".join(labels[-3:])
    return ".".join(labels[-2:])
