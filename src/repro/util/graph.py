"""Small graph utilities: union-find and connected components.

The meta-clustering step (paper section 5.3) finds connected components of a
bipartite graph between WPN clusters and landing-page domains. We implement
this with a plain union-find so the analysis core has no hard dependency on
networkx (which the examples use only for visual export).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Tuple


class UnionFind:
    """Disjoint-set forest over arbitrary hashable items, with path halving."""

    def __init__(self, items: Iterable[Hashable] = ()):
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> None:
        """Register an item as its own singleton set (no-op if present)."""
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, item: Hashable) -> Hashable:
        """Return the canonical representative of ``item``'s set."""
        parent = self._parent
        if item not in parent:
            raise KeyError(f"unknown item: {item!r}")
        root = item
        while parent[root] != root:
            parent[root] = parent[parent[root]]  # path halving
            root = parent[root]
        return root

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        """Merge the sets containing ``a`` and ``b``; returns the new root."""
        self.add(a)
        self.add(b)
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return ra

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """True if ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def components(self) -> List[List[Hashable]]:
        """All disjoint sets, each as a list; deterministic insertion order."""
        groups: Dict[Hashable, List[Hashable]] = {}
        for item in self._parent:
            groups.setdefault(self.find(item), []).append(item)
        return list(groups.values())


def connected_components(
    edges: Iterable[Tuple[Hashable, Hashable]],
    nodes: Iterable[Hashable] = (),
) -> List[List[Hashable]]:
    """Connected components of an undirected graph given as an edge list.

    ``nodes`` may list isolated vertices that appear in no edge.
    """
    uf = UnionFind(nodes)
    for a, b in edges:
        uf.union(a, b)
    return uf.components()
