"""A small URL value type.

We avoid ``urllib.parse`` round-trip surprises by keeping URLs as an explicit
(scheme, host, path, query) tuple; the analysis code relies on the exact
split between path and query that the paper's features use.

This lives in :mod:`repro.util` (the bottom layer of the package DAG) so
that both the analysis pipeline (:mod:`repro.core`) and the simulated web
(:mod:`repro.webenv`) can share one URL type without a layering violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True, order=True)
class Url:
    """An absolute URL: ``scheme://host/path?query``."""

    host: str
    path: str = "/"
    query: str = ""
    scheme: str = "https"

    def __post_init__(self) -> None:
        if not self.host:
            raise ValueError("Url requires a non-empty host")
        if not self.path.startswith("/"):
            raise ValueError(f"path must start with '/', got {self.path!r}")
        if self.scheme not in ("http", "https"):
            raise ValueError(f"unsupported scheme: {self.scheme!r}")

    @classmethod
    def parse(cls, text: str) -> "Url":
        """Parse an absolute http(s) URL string.

        >>> Url.parse("https://a.example.com/x/y?z=1")
        Url(host='a.example.com', path='/x/y', query='z=1', scheme='https')
        """
        if "://" not in text:
            raise ValueError(f"not an absolute URL: {text!r}")
        scheme, rest = text.split("://", 1)
        if "/" in rest:
            host, path_query = rest.split("/", 1)
            path_query = "/" + path_query
        else:
            host, path_query = rest, "/"
        if "?" in path_query:
            path, query = path_query.split("?", 1)
        else:
            path, query = path_query, ""
        return cls(host=host.lower(), path=path, query=query, scheme=scheme)

    def __str__(self) -> str:
        query = f"?{self.query}" if self.query else ""
        return f"{self.scheme}://{self.host}{self.path}{query}"

    @property
    def is_secure(self) -> bool:
        """Only HTTPS origins may register Service Workers."""
        return self.scheme == "https"

    @property
    def origin(self) -> str:
        return f"{self.scheme}://{self.host}"

    def query_params(self) -> List[Tuple[str, str]]:
        """Ordered (name, value) pairs from the query string."""
        pairs = []
        for chunk in self.query.split("&"):
            if not chunk:
                continue
            if "=" in chunk:
                name, value = chunk.split("=", 1)
            else:
                name, value = chunk, ""
            pairs.append((name, value))
        return pairs

    def with_query(self, params: Dict[str, str]) -> "Url":
        """A copy of this URL with the query string replaced."""
        query = "&".join(f"{k}={v}" for k, v in params.items())
        return Url(host=self.host, path=self.path, query=query, scheme=self.scheme)
