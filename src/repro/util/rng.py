"""Deterministic named random streams.

Every stochastic component in the reproduction draws from a named child
stream derived from one master seed. Re-running any experiment with the
same seed therefore reproduces it bit-for-bit, while distinct components
(e.g. campaign generation vs. crawl timing) remain statistically
independent of each other.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable

import numpy as np


def _stable_hash(name: str) -> int:
    """Hash a stream name to a 64-bit integer, stable across processes.

    Python's built-in ``hash`` is salted per process for strings, so we use
    blake2b instead.
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class RngFactory:
    """Produces independent, named random streams from a single master seed.

    >>> rngs = RngFactory(seed=7)
    >>> a = rngs.stream("campaigns")
    >>> b = rngs.stream("campaigns")
    >>> a.random() == b.random()   # same name -> identical stream
    True
    """

    def __init__(self, seed: int = 0):
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed

    def stream(self, name: str) -> random.Random:
        """Return a fresh ``random.Random`` for the given stream name."""
        return random.Random((self.seed << 64) ^ _stable_hash(name))

    def numpy_stream(self, name: str) -> np.random.Generator:
        """Return a fresh numpy ``Generator`` for the given stream name."""
        seq = np.random.SeedSequence([self.seed & (2**63 - 1), _stable_hash(name)])
        return np.random.default_rng(seq)

    def child(self, name: str) -> "RngFactory":
        """Derive a child factory, for handing a subtree its own namespace."""
        return RngFactory(((self.seed << 1) ^ _stable_hash(name)) & (2**63 - 1))


def weighted_choice(rng: random.Random, items: Iterable, weights: Iterable[float]):
    """Pick one item with the given (unnormalized) weights."""
    items = list(items)
    weights = list(weights)
    if len(items) != len(weights):
        raise ValueError("items and weights must have equal length")
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    return rng.choices(items, weights=weights, k=1)[0]
