"""Tokenization helpers for WPN message text and landing-URL paths.

The clustering features in the paper (section 5.1.1) are built from two
token streams per notification:

* the concatenated *title + body* text, as a bag of words;
* the landing URL *path tokens*: directory components, page name, and
  query-string parameter **names** (domain and parameter values excluded).
"""

from __future__ import annotations

import re
from typing import List, Set

_WORD_RE = re.compile(r"[a-z0-9']+")
_PATH_SPLIT_RE = re.compile(r"[/\-_.+~]")

# Tiny stopword list: enough to keep embeddings from being dominated by glue
# words, small enough to keep scam-phrase keywords ("your", in "your payment
# info has been leaked", is deliberately *not* removed — possessive phrasing
# is a real signal in push-ad copy).
STOPWORDS: Set[str] = {
    "a", "an", "the", "of", "to", "in", "on", "at", "is", "are", "was",
    "be", "and", "or", "for", "with", "it", "this", "that",
}


def tokenize_text(text: str, drop_stopwords: bool = True) -> List[str]:
    """Lowercase word tokens from notification title/body text.

    >>> tokenize_text("Your payment info has been LEAKED!")
    ['your', 'payment', 'info', 'has', 'been', 'leaked']
    """
    tokens = _WORD_RE.findall(text.lower())
    if drop_stopwords:
        tokens = [t for t in tokens if t not in STOPWORDS]
    return tokens


def tokenize_url_path(path: str, query: str = "") -> List[str]:
    """Tokens from a URL path plus query-string parameter *names*.

    The domain never reaches this function; query parameter values are
    dropped, parameter names kept (paper section 5.1.1).

    >>> tokenize_url_path("/offers/win-prize/claim.php", "uid=99&src=push")
    ['offers', 'win', 'prize', 'claim', 'php', 'uid', 'src']
    """
    tokens = [t for t in _PATH_SPLIT_RE.split(path.lower()) if t]
    for pair in query.split("&"):
        if not pair:
            continue
        name = pair.split("=", 1)[0].strip().lower()
        if name:
            tokens.append(name)
    return tokens


def ngrams(tokens: List[str], n: int) -> List[str]:
    """Contiguous n-grams joined with spaces; empty when len(tokens) < n."""
    if n <= 0:
        raise ValueError("n must be positive")
    return [" ".join(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]


def jaccard_distance(a: Set[str], b: Set[str]) -> float:
    """Jaccard distance between two token sets; 0.0 for two empty sets."""
    if not a and not b:
        return 0.0
    inter = len(a & b)
    union = len(a | b)
    return 1.0 - inter / union
