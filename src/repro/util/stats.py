"""Small statistics helpers used by the measurement reports."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    pos = (len(ordered) - 1) * q / 100.0
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


def empirical_cdf(values: Sequence[float], points: Sequence[float]) -> List[float]:
    """Fraction of ``values`` <= p for each p in ``points``."""
    if not values:
        raise ValueError("cdf of empty sequence")
    ordered = sorted(values)
    out = []
    for p in points:
        # binary search for rightmost value <= p
        lo, hi = 0, len(ordered)
        while lo < hi:
            mid = (lo + hi) // 2
            if ordered[mid] <= p:
                lo = mid + 1
            else:
                hi = mid
        out.append(lo / len(ordered))
    return out


def counter_table(items: Iterable, top: int = 0) -> List[Tuple[object, int]]:
    """Counts of items, sorted by decreasing count then by key repr."""
    counts: Dict[object, int] = {}
    for item in items:
        counts[item] = counts.get(item, 0) + 1
    rows = sorted(counts.items(), key=lambda kv: (-kv[1], repr(kv[0])))
    return rows[:top] if top else rows


def safe_ratio(numerator: float, denominator: float) -> float:
    """numerator/denominator, or 0.0 when the denominator is zero."""
    return numerator / denominator if denominator else 0.0
