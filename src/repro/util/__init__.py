"""Shared utilities: deterministic RNG streams, text processing, graphs, stats."""

from repro.util.rng import RngFactory
from repro.util.graph import UnionFind
from repro.util.textproc import tokenize_text, tokenize_url_path

__all__ = ["RngFactory", "UnionFind", "tokenize_text", "tokenize_url_path"]
