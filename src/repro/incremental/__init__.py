"""Incremental mining: absorb new WPN batches without a full re-mine.

The paper's measurement is a rolling crawl; ``repro.incremental`` gives
the reproduction the matching always-on shape (ROADMAP item 1).  An
:class:`IncrementalMiner` adopts a completed batch run (a
:class:`~repro.core.pipeline.PipelineResult` or a saved
:class:`~repro.serve.snapshot.MinedSnapshot`), absorbs new record batches
by computing only the delta — frozen-model featurization plus
query-vs-corpus distance kernels from :mod:`repro.perf` — and re-derives
every verdict exactly.  Periodic :meth:`IncrementalMiner.compact` runs
the full batch pipeline over the union, with a test-enforced convergence
contract: the compacted state is bit-identical to a from-scratch mine.
Anything the incremental path cannot keep exact raises
:class:`IncrementalDriftError` rather than silently approximating.
"""

from repro.incremental.miner import (
    AbsorbReport,
    IncrementalDriftError,
    IncrementalMiner,
    IncrementalResult,
)

__all__ = [
    "AbsorbReport",
    "IncrementalDriftError",
    "IncrementalMiner",
    "IncrementalResult",
]
