"""Append-oriented mining: absorb new WPN batches without a full re-mine.

The batch pipeline re-pays features → text model → pairwise distances →
linkage for the whole corpus on every run, even when 95%+ of it is
unchanged.  :class:`IncrementalMiner` instead *absorbs* a batch against a
frozen base state:

* featurize only the new records, against the base run's frozen
  :class:`~repro.core.textsim.SoftCosineModel` (its per-row operands are
  row-independent, so the new rows are bitwise the rows a batch run with
  this model would compute);
* run the query-vs-corpus distance kernels — the blocked
  :func:`~repro.perf.delta.nearest_corpus_rows` under ``storage="sparse"``,
  the dense :func:`~repro.perf.kernels.query_distance_tile` otherwise — and
  assign each new WPN to its nearest existing cluster iff the combined
  distance clears the frozen ``cut_threshold``, opening a singleton
  cluster for the rest (ties break to the lowest corpus index, the
  dense-argmin convention);
* re-run the deterministic post-clustering verdict stages (campaigns →
  blocklist labeling → meta clustering → suspicion) over the union via
  :meth:`~repro.core.pipeline.PushAdMiner.run_verdict_stages` — they are
  pure functions of ``(records, labels, config)``, so the refreshed
  verdicts carry no incremental approximation at all.

**What is and is not exact.** Between compactions the *clustering* is an
approximation by construction: the text model stays frozen (a batch run
would refit on the union) and absorbed records never trigger re-linkage.
Everything the incremental path *does* compute — distances, assignment
decisions, verdicts over the incremental labels — is exact, and any state
it cannot update exactly raises :class:`IncrementalDriftError` instead of
silently approximating: dendrogram-derived artifacts
(``distances``/``linkage``/``silhouette`` on :class:`IncrementalResult`),
a sparse configuration whose ``cut_threshold`` reaches the blocking
bound (the delta kernel's certificates would no longer cover the
assignment decision), stale or mismatched base state.

:meth:`IncrementalMiner.compact` is the convergence contract's other
half: a full from-scratch re-mine of the union corpus (text model refit
included) that resets the base state.  ``tests/incremental`` enforces
that absorb-then-compact output is **bit-identical** to
``PushAdMiner.run`` over the same union — the same discipline as the
incremental cut sweep vs. ``Linkage.cut``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np
from scipy import sparse

from repro.core.campaigns import WpnCluster
from repro.core.features import WpnFeatures, extract_all
from repro.core.labeling import LabelingResult
from repro.core.metacluster import MetaCluster
from repro.core.pipeline import (
    MinerConfig,
    PipelineResult,
    PushAdMiner,
    ResultSummaryMixin,
)
from repro.core.records import WpnRecord
from repro.core.suspicious import SuspicionResult
from repro.core.textsim import SoftCosineModel
from repro.core.urlsim import url_membership_matrix
from repro.core.verification import ManualVerificationOracle
from repro.obs import Tracer
from repro.perf import (
    ExecutionPlan,
    PairwiseOperands,
    QueryOperands,
    nearest_corpus_rows,
    query_distance_tile,
)
from repro.serve.snapshot import MinedSnapshot


class IncrementalDriftError(RuntimeError):
    """Incremental state cannot be updated (or read) exactly.

    The incremental path never silently approximates: any artifact it
    cannot keep bit-exact relative to its own contract — and any base
    state it cannot verify — is refused with this error.  The remedy is
    always the same: run :meth:`IncrementalMiner.compact` (or a full
    batch mine) to re-establish an exact base.
    """


@dataclass(frozen=True)
class AbsorbReport:
    """Accounting of one :meth:`IncrementalMiner.absorb` call."""

    batch_size: int
    assigned: int
    opened: int
    corpus_size: int
    #: Records absorbed since the last compaction (or the base run):
    #: clustered against a frozen text model and without re-linkage, so
    #: their placement is re-derived exactly at the next compaction.
    deferred_to_compaction: int
    #: Blocked path only: raw candidate pairs the inverted URL-token
    #: index enumerated, and pairs that survived the certified screens.
    n_candidates: int = 0
    n_scored: int = 0


@dataclass
class IncrementalResult(ResultSummaryMixin):
    """A :class:`~repro.core.pipeline.PipelineResult`-shaped view of
    incremental state.

    Shares every verdict/summary derivation with the batch result via
    :class:`~repro.core.pipeline.ResultSummaryMixin`, and is accepted by
    :meth:`~repro.serve.snapshot.MinedSnapshot.from_result` (which reads
    none of the dendrogram artifacts).  The artifacts the incremental
    path does not maintain — ``distances``, ``linkage``, ``silhouette``
    — raise :class:`IncrementalDriftError` instead of returning stale
    base-run values.
    """

    records: List[WpnRecord]
    labels: np.ndarray
    clusters: List[WpnCluster]
    campaign_cluster_ids: Set[int]
    labeling: LabelingResult
    metas: List[MetaCluster]
    suspicion: SuspicionResult
    oracle: ManualVerificationOracle
    cut_threshold: float
    config: MinerConfig = field(default_factory=lambda: MinerConfig())
    text_model: Optional[SoftCosineModel] = None
    #: Records absorbed on top of the last exact (batch/compacted) state.
    absorbed_since_compaction: int = 0

    @property
    def distances(self) -> Any:
        raise IncrementalDriftError(
            "incremental results carry no pairwise distance matrices: "
            "absorbed records were never paired against each other; "
            "compact() re-mines the union and yields exact matrices"
        )

    @property
    def linkage(self) -> Any:
        raise IncrementalDriftError(
            "incremental results carry no dendrogram: absorption assigns "
            "against the frozen cut threshold without re-linkage; "
            "compact() re-mines the union and yields an exact linkage"
        )

    @property
    def silhouette(self) -> Any:
        raise IncrementalDriftError(
            "incremental results carry no silhouette score: the frozen "
            "cut threshold was selected on the base corpus, not re-scored "
            "per batch; compact() re-selects the cut on the union"
        )


@dataclass
class _CorpusState:
    """The query-kernel operands of the current union corpus.

    Maintained append-only: every absorb extends these arrays with the
    batch rows it just featurized (row-independent operations, so the
    extended operands equal a from-scratch rebuild over the union with
    the same frozen model and vocabulary-extension order).
    """

    operands: PairwiseOperands
    url_vocabulary: Dict[str, int]


class IncrementalMiner:
    """Absorb new WPN batches into a completed mining run's state.

    Construct with :meth:`from_result` (live pipeline output) or
    :meth:`from_snapshot` (a saved serving snapshot plus its source
    records); then :meth:`absorb` batches, :meth:`result` at any point
    for a queryable/exportable view, and :meth:`compact` periodically to
    re-establish the exact batch state.
    """

    def __init__(
        self,
        config: MinerConfig,
        *,
        records: Sequence[WpnRecord],
        labels: np.ndarray,
        cut_threshold: float,
        text_model: SoftCosineModel,
        tracer: Optional[Tracer] = None,
    ):
        self.config = config
        self.tracer: Tracer = tracer if tracer is not None else Tracer()
        self._miner = PushAdMiner(config, tracer=self.tracer)
        self._records: List[WpnRecord] = list(records)
        self._labels = np.asarray(labels, dtype=np.int64).copy()
        self._cut_threshold = float(cut_threshold)
        self._model = text_model
        self._absorbed_since_compaction = 0
        self._validate_base()
        self._corpus = self._build_corpus_state(self._records)
        self._next_label = int(self._labels.max()) + 1
        verdicts = self._miner.run_verdict_stages(self._records, self._labels)
        self._verdicts = verdicts

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_result(
        cls, result: PipelineResult, *, tracer: Optional[Tracer] = None
    ) -> "IncrementalMiner":
        """Adopt a completed :class:`PipelineResult` as the base state."""
        if result.text_model is None or not result.text_model.is_fitted:
            raise IncrementalDriftError(
                "base result carries no fitted text model; incremental "
                "absorption requires the frozen model the base run "
                "featurized with"
            )
        return cls(
            result.config,
            records=result.records,
            labels=np.asarray(result.labels),
            cut_threshold=result.cut_threshold,
            text_model=result.text_model,
            tracer=tracer,
        )

    @classmethod
    def from_snapshot(
        cls,
        snapshot: MinedSnapshot,
        records: Sequence[WpnRecord],
        *,
        tracer: Optional[Tracer] = None,
    ) -> "IncrementalMiner":
        """Adopt a saved :class:`MinedSnapshot` plus its source records.

        Snapshots store features and labels but not the full
        :class:`WpnRecord` rows the verdict stages need, so the caller
        supplies the records the snapshot was exported from (e.g. from a
        deterministic re-crawl).  Alignment is verified per row — wpn id
        order and landing URL must match the snapshot exactly — and any
        mismatch raises :class:`IncrementalDriftError`.
        """
        rows = snapshot.records
        if len(records) != len(rows):
            raise IncrementalDriftError(
                f"snapshot holds {len(rows)} records but {len(records)} "
                f"were supplied; incremental state must adopt the exact "
                f"base corpus"
            )
        for i, (record, row) in enumerate(zip(records, rows)):
            if record.wpn_id != row["wpn_id"]:
                raise IncrementalDriftError(
                    f"record {i} is {record.wpn_id!r} but the snapshot "
                    f"expects {row['wpn_id']!r}; supply the snapshot's "
                    f"source records in corpus order"
                )
            if record.landing_url != row["landing_url"]:
                raise IncrementalDriftError(
                    f"record {record.wpn_id!r} landing URL does not match "
                    f"the snapshot; the supplied corpus drifted from the "
                    f"mined one"
                )
        config = MinerConfig(**snapshot.provenance["config"])
        labels = np.asarray(
            [int(row["cluster_id"]) for row in rows], dtype=np.int64
        )
        return cls(
            config,
            records=records,
            labels=labels,
            cut_threshold=snapshot.cut_threshold,
            text_model=snapshot.restore_text_model(),
            tracer=tracer,
        )

    # ------------------------------------------------------------------
    # Base-state validation and operand maintenance
    # ------------------------------------------------------------------
    def _validate_base(self) -> None:
        if not self._records:
            raise IncrementalDriftError("base state holds no records")
        if self._labels.shape != (len(self._records),):
            raise IncrementalDriftError(
                f"base labels have shape {self._labels.shape} for "
                f"{len(self._records)} records; the base state is corrupt"
            )
        if not all(r.valid for r in self._records):
            raise IncrementalDriftError(
                "base state contains invalid records; the batch pipeline "
                "only ever clusters valid ones"
            )
        if not self._model.is_fitted:
            raise IncrementalDriftError(
                "text model is unfitted; incremental featurization "
                "requires the frozen base model"
            )
        if (
            self.config.storage == "sparse"
            and self._cut_threshold >= self.config.blocking_bound
        ):
            raise IncrementalDriftError(
                f"cut threshold {self._cut_threshold} reaches the blocking "
                f"bound {self.config.blocking_bound}: the delta kernel's "
                f"certificates only cover assignment decisions strictly "
                f"below the bound; re-mine with a larger blocking_bound "
                f"or dense storage"
            )

    def _build_corpus_state(
        self, records: Sequence[WpnRecord]
    ) -> _CorpusState:
        features = extract_all(records)
        texts = [list(f.text_tokens) for f in features]
        bow, emb, zero = self._model.corpus_operands(texts)
        # First-seen vocabulary over sorted per-record token lists:
        # process-stable, and extended (never rebuilt) by each absorb.
        url_lists = [sorted(f.url_tokens) for f in features]
        vocabulary: Dict[str, int] = {}
        for tokens in url_lists:
            for token in tokens:
                if token not in vocabulary:
                    vocabulary[token] = len(vocabulary)
        member = url_membership_matrix(url_lists, vocabulary)
        sizes = np.asarray(member.sum(axis=1)).ravel()
        operands = PairwiseOperands(
            bow_normed=bow,
            doc_emb=emb,
            zero_rows=zero,
            blend=self._model.blend,
            url_member=member,
            url_sizes=sizes,
            url_empty=sizes == 0,
        )
        return _CorpusState(operands=operands, url_vocabulary=vocabulary)

    def _extend_corpus_state(
        self,
        features: Sequence[WpnFeatures],
        q_bow: sparse.csr_matrix,
        q_emb: np.ndarray,
        q_zero: np.ndarray,
    ) -> None:
        """Append the batch rows to the corpus operands, in place.

        Every extension is row-independent (the text operands are
        normalized per row; URL memberships are exact 0/1 sums), so the
        extended operands are bitwise what :meth:`_build_corpus_state`
        would produce over the union with the same model and the same
        first-seen vocabulary order.
        """
        state = self._corpus
        old = state.operands
        vocabulary = state.url_vocabulary
        url_lists = [sorted(f.url_tokens) for f in features]
        for tokens in url_lists:
            for token in tokens:
                if token not in vocabulary:
                    vocabulary[token] = len(vocabulary)
        # Pad the existing membership columns to the extended vocabulary
        # (pure shape change: no stored entry moves), then stack the
        # batch rows computed over the same vocabulary.
        padded = sparse.csr_matrix(
            (
                old.url_member.data,
                old.url_member.indices,
                old.url_member.indptr,
            ),
            shape=(old.url_member.shape[0], len(vocabulary)),
        )
        q_member = url_membership_matrix(url_lists, vocabulary)
        member = sparse.vstack([padded, q_member], format="csr")
        sizes = np.concatenate(
            [old.url_sizes, np.asarray(q_member.sum(axis=1)).ravel()]
        )
        state.operands = PairwiseOperands(
            bow_normed=sparse.vstack(
                [old.bow_normed, q_bow], format="csr"
            ),
            doc_emb=np.concatenate([old.doc_emb, q_emb]),
            zero_rows=np.concatenate([old.zero_rows, q_zero]),
            blend=old.blend,
            url_member=member,
            url_sizes=sizes,
            url_empty=sizes == 0,
        )

    # ------------------------------------------------------------------
    # Absorption
    # ------------------------------------------------------------------
    def _check_batch(self, batch: Sequence[WpnRecord]) -> None:
        if not batch:
            raise ValueError("absorb() takes a non-empty batch")
        seen = {r.wpn_id for r in self._records}
        batch_ids: Set[str] = set()
        for record in batch:
            if not record.valid:
                raise IncrementalDriftError(
                    f"batch record {record.wpn_id!r} is invalid; absorb() "
                    f"takes pre-filtered valid records (dataset"
                    f".valid_records), so a dropped row can never make "
                    f"the absorbed corpus drift from the compaction union"
                )
            if record.wpn_id in seen or record.wpn_id in batch_ids:
                raise IncrementalDriftError(
                    f"duplicate wpn id {record.wpn_id!r}: per-record "
                    f"verdicts are keyed by wpn id, so a collision would "
                    f"corrupt the incremental state"
                )
            batch_ids.add(record.wpn_id)

    def _nearest(
        self, operands: QueryOperands, plan: ExecutionPlan
    ) -> Tuple[np.ndarray, np.ndarray, int, int]:
        """``(distances, columns, n_candidates, n_scored)`` per query."""
        if self.config.storage == "sparse":
            found = nearest_corpus_rows(
                operands, plan, bound=self.config.blocking_bound
            )
            return (
                found.distances,
                found.columns,
                found.n_candidates,
                found.n_scored,
            )
        blocks = plan.run(
            query_distance_tile, operands, plan.tiles(operands.corpus.n)
        )
        distances = np.concatenate(blocks, axis=1)
        columns = distances.argmin(axis=1).astype(np.int64)
        q = np.arange(distances.shape[0])
        return distances[q, columns], columns, 0, 0

    def absorb(self, batch: Sequence[WpnRecord]) -> AbsorbReport:
        """Absorb one batch of new records; returns the accounting.

        Assignment compares each batch record against the corpus as of
        the batch start (batch records are not paired with each other —
        two identical new records open one singleton each, to be joined
        at the next compaction), then the verdict stages re-run over the
        union exactly.
        """
        with self.tracer.span("incremental.absorb") as span:
            self._check_batch(batch)
            cfg = self.config
            plan = ExecutionPlan(workers=cfg.workers, tile_size=cfg.tile_size)

            with self.tracer.span("incremental.assign") as assign_span:
                features = extract_all(batch)
                q_bow, q_emb, q_zero = self._model.corpus_operands(
                    [list(f.text_tokens) for f in features]
                )
                url_lists = [sorted(f.url_tokens) for f in features]
                q_member = url_membership_matrix(
                    url_lists, self._corpus.url_vocabulary
                )
                q_sizes = np.asarray(
                    [len(tokens) for tokens in url_lists], dtype=np.float64
                )
                operands = QueryOperands(
                    corpus=self._corpus.operands,
                    q_bow_normed=q_bow,
                    q_doc_emb=q_emb,
                    q_zero_rows=q_zero,
                    q_url_member=q_member,
                    q_url_sizes=q_sizes,
                    q_url_empty=q_sizes == 0,
                )
                distances, columns, n_candidates, n_scored = self._nearest(
                    operands, plan
                )
                new_labels = np.empty(len(batch), dtype=np.int64)
                assign = distances <= self._cut_threshold
                for i in range(len(batch)):
                    if assign[i]:
                        new_labels[i] = self._labels[columns[i]]
                    else:
                        new_labels[i] = self._next_label
                        self._next_label += 1
                assigned = int(assign.sum())
                assign_span.gauge("batch", len(batch))
                assign_span.gauge("assigned", assigned)
                assign_span.gauge("opened", len(batch) - assigned)
                assign_span.gauge("candidate_pairs", n_candidates)
                assign_span.gauge("scored_pairs", n_scored)
                assign_span.gauge("workers", plan.workers)

            self._records.extend(batch)
            self._labels = np.concatenate([self._labels, new_labels])
            self._extend_corpus_state(features, q_bow, q_emb, q_zero)

            with self.tracer.span("incremental.verdicts"):
                self._verdicts = self._miner.run_verdict_stages(
                    self._records, self._labels
                )

            self._absorbed_since_compaction += len(batch)
            span.gauge("batch", len(batch))
            span.gauge("assigned", assigned)
            span.gauge("opened", len(batch) - assigned)
            span.gauge("corpus", len(self._records))
            span.gauge(
                "deferred_to_compaction", self._absorbed_since_compaction
            )
            return AbsorbReport(
                batch_size=len(batch),
                assigned=assigned,
                opened=len(batch) - assigned,
                corpus_size=len(self._records),
                deferred_to_compaction=self._absorbed_since_compaction,
                n_candidates=n_candidates,
                n_scored=n_scored,
            )

    # ------------------------------------------------------------------
    # Views and compaction
    # ------------------------------------------------------------------
    @property
    def n_records(self) -> int:
        return len(self._records)

    @property
    def absorbed_since_compaction(self) -> int:
        """Records clustered incrementally since the last exact state."""
        return self._absorbed_since_compaction

    def result(self) -> IncrementalResult:
        """The current union state as a queryable/exportable result."""
        verdicts = self._verdicts
        return IncrementalResult(
            records=list(self._records),
            labels=self._labels.copy(),
            clusters=verdicts.clusters,
            campaign_cluster_ids=verdicts.campaign_cluster_ids,
            labeling=verdicts.labeling,
            metas=verdicts.metas,
            suspicion=verdicts.suspicion,
            oracle=verdicts.oracle,
            cut_threshold=self._cut_threshold,
            config=self.config,
            text_model=self._model,
            absorbed_since_compaction=self._absorbed_since_compaction,
        )

    def compact(self) -> PipelineResult:
        """Full re-mine of the union corpus; resets the base state.

        This *is* the from-scratch batch pipeline over every record this
        miner holds — text model refit on the union, full pairwise
        distances, fresh linkage and cut selection — so its output is
        bit-identical to ``PushAdMiner(config).run(union_records)`` by
        construction, and the incremental state adopted from it carries
        no drift (``absorbed_since_compaction`` resets to 0).
        """
        with self.tracer.span("incremental.compact") as span:
            span.gauge("corpus", len(self._records))
            span.gauge(
                "absorbed_since_compaction", self._absorbed_since_compaction
            )
            full = PushAdMiner(self.config, tracer=self.tracer).run(
                self._records
            )
            self._records = list(full.records)
            self._labels = np.asarray(full.labels, dtype=np.int64).copy()
            self._cut_threshold = float(full.cut_threshold)
            assert full.text_model is not None  # run() always fits one
            self._model = full.text_model
            self._absorbed_since_compaction = 0
            self._validate_base()
            self._corpus = self._build_corpus_state(self._records)
            self._next_label = int(self._labels.max()) + 1
            self._verdicts = self._miner.run_verdict_stages(
                self._records, self._labels
            )
            return full
