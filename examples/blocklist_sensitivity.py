#!/usr/bin/env python
"""Ablation: how malicious-campaign discovery depends on blocklist coverage.

The paper's labeling starts from VirusTotal/GSB hits and amplifies them via
guilt-by-association and meta-clustering. This ablation sweeps VT's
eventual coverage rate and measures how many truly-malicious ads each
pipeline stage recovers — quantifying how far the clustering machinery can
stretch a weak blocklist signal (and where it stops helping).

Usage::

    python examples/blocklist_sensitivity.py [--scale 0.05] [--seed 7]
"""

import argparse

from repro import PushAdMiner, paper_scenario, run_full_crawl
from repro.core.report import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    dataset = run_full_crawl(config=paper_scenario(seed=args.seed, scale=args.scale))
    valid = dataset.valid_records
    truly_malicious = {r.wpn_id for r in valid if r.truth.malicious}
    print(f"{len(valid)} valid WPNs, {len(truly_malicious)} truly malicious\n")

    rows = []
    for vt_rate in (0.05, 0.15, 0.30, 0.50, 0.75):
        miner = PushAdMiner.for_dataset(dataset, vt_late_rate=vt_rate)
        result = miner.run(valid)
        known = result.labeling.known_malicious_ids
        confirmed = (
            known
            | result.labeling.propagated_confirmed_ids
            | result.suspicion.confirmed_malicious_ids
        )
        recall_bl = len(known & truly_malicious) / len(truly_malicious)
        recall_all = len(confirmed & truly_malicious) / len(truly_malicious)
        amplification = (recall_all / recall_bl) if recall_bl else float("inf")
        rows.append((
            f"{vt_rate:.2f}",
            len(known),
            len(confirmed),
            f"{100 * recall_bl:.1f}%",
            f"{100 * recall_all:.1f}%",
            f"{amplification:.1f}x",
        ))

    print(render_table(
        ["VT coverage", "blocklist hits", "after pipeline",
         "blocklist recall", "pipeline recall", "amplification"],
        rows,
    ))
    print("\nThe clustering stages multiply whatever the blocklists find; "
          "with realistic (low) coverage the multiplier is largest.")


if __name__ == "__main__":
    main()
