#!/usr/bin/env python
"""Trace one instrumented browser session, hook by hook.

Follows a single publisher URL through the full WPN lifecycle the paper's
Chromium instrumentation logs: permission prompt -> auto-grant -> service
worker registration -> push subscription -> FCM delivery -> notification
display -> automated click -> SW click-tracking request -> redirect chain
-> landing page. Prints the raw event log, like reading the browser logs
the analysis pipeline consumes.

Usage::

    python examples/browser_session_trace.py [--seed 3] [--mobile]
"""

import argparse

from repro import generate_ecosystem, paper_scenario
from repro.crawler.seeds import discover_seeds
from repro.crawler.session import ContainerSession
from repro.push.fcm import FcmService
from repro.util.rng import RngFactory


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--mobile", action="store_true",
                        help="trace the Android path instead of desktop")
    args = parser.parse_args()

    ecosystem = generate_ecosystem(paper_scenario(seed=args.seed, scale=0.02))
    discovery = discover_seeds(ecosystem)
    platform = "mobile" if args.mobile else "desktop"

    # Find an active publisher that will actually push something.
    site = next(
        s for s in discovery.npr_sites()
        if s.kind == "publisher" and s.active_notifier
    )
    print(f"Visiting {site.url} (embeds: {', '.join(site.network_names)}) "
          f"on {platform}\n")

    session = ContainerSession(
        ecosystem=ecosystem,
        fcm=FcmService(),
        site=site,
        platform=platform,
        rng=RngFactory(args.seed).stream("trace"),
        start_min=0.0,
    )
    result = session.run()

    print("--- instrumentation event log ---")
    for event in session.browser.events:
        interesting = {
            k: v for k, v in event.data.items()
            if k in ("origin", "url", "decision", "title", "script_url",
                     "to_url", "purpose", "page_kind")
        }
        details = "  ".join(f"{k}={str(v)[:56]}" for k, v in interesting.items())
        print(f"[{event.time_min:10.2f} min] {event.kind:22s} {details}")

    print(f"\n--- harvested WPN records: {len(result.records)} ---")
    for record in result.records[:5]:
        flag = "MALICIOUS" if record.truth.malicious else "benign"
        landing = record.landing_url or "(no landing: crashed/invalid)"
        print(f"  [{flag:9s}] {record.title[:40]:42s} -> {landing[:64]}")

    if platform == "mobile" and session.device is not None:
        print(f"\n--- last ADB logcat lines "
              f"({session.device.accessibility.taps} accessibility taps) ---")
        session.device.sync_logcat()
        for line in session.device.logcat.lines[-5:]:
            print(" ", line[:100])


if __name__ == "__main__":
    main()
