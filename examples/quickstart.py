#!/usr/bin/env python
"""Quickstart: crawl a simulated push-ad ecosystem and mine its WPN ads.

Runs the whole PushAdMiner loop at a small scale (~1 minute of the paper's
two-month study): generate the world, seed the crawler from code search,
collect push notifications on desktop + mobile, then cluster, label and
report — ending with the paper's headline measurement (Table 3).

Usage::

    python examples/quickstart.py [--scale 0.05] [--seed 7]
"""

import argparse

from repro import PushAdMiner, paper_scenario, run_full_crawl
from repro.core import report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05,
                        help="fraction of the paper's URL population")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print(f"Generating ecosystem + crawling (scale={args.scale}, seed={args.seed})...")
    dataset = run_full_crawl(config=paper_scenario(seed=args.seed, scale=args.scale))
    crawl = dataset.summary()
    print(f"  seeded {crawl['seed_urls']} URLs, "
          f"{crawl['npr_urls']} requested notification permission")
    print(f"  collected {crawl['collected_wpns']} WPNs "
          f"({crawl['desktop_wpns']} desktop / {crawl['mobile_wpns']} mobile), "
          f"{crawl['valid_wpns']} with a valid landing page")

    print("\nRunning the analysis pipeline...")
    result = PushAdMiner.for_dataset(dataset).run(dataset.valid_records)

    print("\nTable 3 — summary of findings")
    rows = [(k, v) for k, v in report.table3_summary(dataset, result).items()]
    print(report.render_table(["metric", "value"], rows))

    print("\nTable 4 — results at each clustering stage")
    print(report.render_table(
        ["stage", "#clusters", "#ad-related", "#WPN ads",
         "#known malicious", "#additional malicious"],
        report.table4_rows(result),
    ))

    pct = result.summary()["malicious_ad_pct"]
    print(f"\n=> {pct}% of identified WPN ads are malicious "
          "(the paper measured 51%).")


if __name__ == "__main__":
    main()
