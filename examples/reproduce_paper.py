#!/usr/bin/env python
"""Reproduce the whole paper in one run: every table, figure and side
experiment, written to an output directory.

Produces:

* ``tables.txt``  — Tables 1-6 plus the side-experiment summaries
* ``records.jsonl`` — the collected WPN dataset
* ``figure5_*.svg`` / ``figure6_*.svg`` / ``pilot_latency_cdf.svg``

Usage::

    python examples/reproduce_paper.py --out /tmp/pushadminer [--scale 0.08]
"""

import argparse
from pathlib import Path

from repro import PushAdMiner, paper_scenario, run_full_crawl
from repro.adblock import evaluate_blocking
from repro.core import report
from repro.core.brandspoof import analyze_brand_spoofing
from repro.experiments import (
    run_blocklist_lag,
    run_double_permission_check,
    run_latency_pilot,
    run_quiet_ui_experiment,
    run_revisit_experiment,
)
from repro.io import save_records
from repro.viz import save_figures


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="paper_output")
    parser.add_argument("--scale", type=float, default=0.08)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    lines = []

    def emit(text=""):
        print(text)
        lines.append(text)

    emit(f"# PushAdMiner reproduction (seed={args.seed}, scale={args.scale})")
    dataset = run_full_crawl(config=paper_scenario(seed=args.seed, scale=args.scale))
    result = PushAdMiner.for_dataset(dataset).run(dataset.valid_records)

    emit("\n## Table 1 — seed URLs and permission requests")
    emit(report.render_table(["seed", "URLs", "NPRs"],
                             report.table1_rows(dataset.discovery)))

    emit("\n## Table 2 — Alexa rank breakdown of NPR domains")
    emit(report.render_table(["rank bucket", "domains"], report.table2_rows(dataset)))

    emit("\n## Table 3 — summary of findings")
    emit(report.render_table(
        ["metric", "value"], list(report.table3_summary(dataset, result).items())
    ))

    emit("\n## Table 4 — results per clustering stage")
    emit(report.render_table(
        ["stage", "#clusters", "#ad-related", "#WPN ads",
         "#known malicious", "#additional malicious"],
        report.table4_rows(result),
    ))

    emit("\n## Table 5 — residual singleton examples")
    emit(report.render_table(
        ["title", "landing domain", "analyst read"],
        report.table5_singletons(result, sample=8),
    ))

    emit("\n## Table 6 — ad blockers vs WPN ads")
    emit(report.render_table(
        ["mechanism", "SW requests", "blocked", "blocked %"],
        [
            (r.mechanism, r.total_requests, r.blocked_requests,
             f"{r.blocked_pct:.2f}%")
            for r in evaluate_blocking(
                dataset.sw_requests, dataset.ecosystem.network_domains
            )
        ],
    ))

    emit("\n## Figure 4 — example clusters")
    for example in report.fig4_cluster_examples(result):
        emit(f"[{example.label}] {example.description} (n={len(example.cluster)})")
        for source, title, landing in example.sample_messages(2):
            emit(f"    {source:26s} {title[:40]:42s} -> {landing}")

    emit("\n## Figure 6 — WPN ads per ad network")
    emit(report.render_table(
        ["network", "#ads", "#malicious"],
        report.fig6_network_distribution(result),
    ))

    emit("\n## Side experiments")
    pilot = run_latency_pilot(dataset.ecosystem, n_sites=1000)
    emit(f"pilot latency: {pilot.within_15min_pct}% within 15 min (paper: 98%)")
    lag = run_blocklist_lag(dataset)
    emit(f"blocklist lag: VT {lag.vt_initial_pct:.2f}% -> {lag.vt_late_pct:.2f}% "
         f"(paper: <1% -> 11.31%), GSB {lag.gsb_late_pct:.2f}%")
    revisit = run_revisit_experiment(dataset, n_sites=300)
    emit(f"revisit: {revisit.active_sites}/300 active, {revisit.notifications} "
         f"WPNs, {revisit.wpn_ads} ads, {revisit.malicious_ads} malicious, "
         f"VT flagged {revisit.vt_flagged_urls} (paper: 35, 305, 198, 48, 15)")
    double = run_double_permission_check(dataset, n_sites=200)
    emit(f"double permission: {double.switched_to_double}/200 switched "
         f"(paper: 49/200)")
    quiet = run_quiet_ui_experiment(dataset, n_sites=300)
    emit(f"quiet UI: {quiet.suppressed_now}/300 suppressed (paper: 0/300)")

    spoofing = analyze_brand_spoofing(result.records)
    emit(f"brand spoofing: {spoofing.spoofing_wpns} WPNs impersonate brands "
         f"{dict(spoofing.top_brands(3))}")

    # Artifacts.
    (out / "tables.txt").write_text("\n".join(lines) + "\n", encoding="utf-8")
    save_records(dataset.records, out / "records.jsonl")
    figures = save_figures(result, dataset.first_latencies_min, out)
    print(f"\nwrote {out / 'tables.txt'}, records.jsonl and "
          f"{len(figures)} SVG figures to {out}/")


if __name__ == "__main__":
    main()
