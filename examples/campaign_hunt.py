#!/usr/bin/env python
"""Campaign hunt: dissect malicious WPN ad campaigns and their operations.

Reproduces the qualitative side of the paper's section 6.3: example WPN
clusters (Figure 4), the meta-clusters that tie campaigns together through
shared landing domains (Figure 5), the per-ad-network abuse distribution
(Figure 6), and the manual-verification factors that confirm each find.

Usage::

    python examples/campaign_hunt.py [--scale 0.06] [--seed 11]
"""

import argparse
from collections import Counter

from repro import PushAdMiner, paper_scenario, run_full_crawl
from repro.core import report
from repro.core.campaigns import is_ad_campaign


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.06)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    dataset = run_full_crawl(config=paper_scenario(seed=args.seed, scale=args.scale))
    result = PushAdMiner.for_dataset(dataset).run(dataset.valid_records)

    print("=== Example WPN clusters (Figure 4 analogues) ===")
    for example in report.fig4_cluster_examples(result):
        print(f"\n[{example.label}] {example.description} "
              f"({len(example.cluster)} WPNs, "
              f"{len(example.cluster.source_etld1s)} source domains)")
        for source, title, landing in example.sample_messages(3):
            print(f"   {source:28s} {title[:44]:46s} -> {landing}")

    print("\n=== Meta clusters: campaign operations (Figure 5) ===")
    suspicious = [m for m in result.metas
                  if m.meta_id in result.suspicion.suspicious_meta_ids]
    suspicious.sort(key=lambda m: -len(m.clusters))
    for meta in suspicious[:3]:
        campaigns = sum(1 for c in meta.clusters if is_ad_campaign(c))
        print(f"\nmeta#{meta.meta_id}: {len(meta.clusters)} WPN clusters "
              f"({campaigns} campaigns) sharing {len(meta.domains)} landing domains")
        print(f"   domains: {', '.join(sorted(meta.domains)[:6])}")
        ips = Counter(r.landing_ip for r in meta.records if r.landing_ip)
        print(f"   top landing IPs: {ips.most_common(2)}")

    print("\n=== Manual verification factors at work ===")
    shown = 0
    for record in result.records:
        if record.wpn_id in result.suspicion.confirmed_malicious_ids:
            factors = result.oracle.matched_factors(record)
            if factors:
                print(f"   {record.title[:44]:46s} {factors}")
                shown += 1
            if shown >= 5:
                break

    print("\n=== WPN ads per ad network (Figure 6) ===")
    print(report.render_table(
        ["ad network", "#WPN ads", "#malicious"],
        report.fig6_network_distribution(result),
    ))


if __name__ == "__main__":
    main()
