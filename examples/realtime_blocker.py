#!/usr/bin/env python
"""Deploy the malicious-WPN detector as a real-time blocker (what-if).

The paper's closing proposal made concrete: label the first month of
collected WPNs with the PushAdMiner pipeline, train the detector on those
labels, then replay the second month in send order and block on the fly.
Prints the operating curve (malicious blocked vs benign falsely blocked)
and picks a threshold under a false-block budget.

Usage::

    python examples/realtime_blocker.py [--scale 0.06] [--budget 0.02]
"""

import argparse

from repro import paper_scenario, run_full_crawl
from repro.core.report import render_table
from repro.experiments import run_realtime_blocking


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.06)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--budget", type=float, default=0.02,
                        help="max tolerated benign false-block rate")
    args = parser.parse_args()

    dataset = run_full_crawl(config=paper_scenario(seed=args.seed, scale=args.scale))
    result = run_realtime_blocking(
        dataset, thresholds=(0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
    )

    print(f"trained on month 1 ({result.train_wpns} WPNs, pipeline labels); "
          f"deployed over month 2 ({result.deploy_wpns} WPNs, "
          f"{result.deploy_malicious} truly malicious)\n")

    print(render_table(
        ["threshold", "malicious blocked", "benign falsely blocked"],
        [
            (f"{p.threshold:.1f}",
             f"{p.blocked_malicious}/{p.blocked_malicious + p.missed_malicious}"
             f" ({100 * p.block_rate_malicious:.1f}%)",
             f"{p.blocked_benign} ({100 * p.false_block_rate:.2f}%)")
            for p in result.operating_points
        ],
    ))

    best = result.best_under_false_block_budget(args.budget)
    if best is None:
        print(f"\nno threshold keeps false blocks under {args.budget:.0%}")
    else:
        print(f"\nAt a {args.budget:.0%} false-block budget, threshold "
              f"{best.threshold:.1f} would have spared users "
              f"{best.blocked_malicious} of {result.deploy_malicious} "
              f"malicious WPNs ({100 * best.block_rate_malicious:.1f}%) "
              f"while wrongly suppressing {best.blocked_benign} benign ones.")


if __name__ == "__main__":
    main()
