#!/usr/bin/env python
"""Ad-blocker audit: why traditional blocking misses WPN ads (Table 6).

Collects the service-worker network traffic behind a crawl, then tests it
against (a) EasyList-style filter rules and (b) two modeled blocker
extensions — which, like real extensions in the browser generation the
paper studied, cannot see SW requests at all. Finally shows what a
hypothetical SW-aware extension with a push-specific list *could* block.

Usage::

    python examples/adblock_audit.py [--scale 0.05] [--seed 7]
"""

import argparse

from repro import paper_scenario, run_full_crawl
from repro.adblock import AdBlockerExtension, FilterList, evaluate_blocking
from repro.adblock.easylist import synthetic_easylist
from repro.core.report import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    dataset = run_full_crawl(config=paper_scenario(seed=args.seed, scale=args.scale))
    sw_requests = dataset.sw_requests
    print(f"Collected {len(sw_requests)} service-worker network requests "
          f"behind {len(dataset.records)} WPNs.\n")

    print("Table 6 — existing ad blocking vs WPN ad traffic")
    rows = [
        (r.mechanism, r.total_requests, r.blocked_requests,
         f"{r.blocked_pct:.2f}%", f"{r.scripts_matched_pct:.1f}%")
        for r in evaluate_blocking(sw_requests, dataset.ecosystem.network_domains)
    ]
    print(render_table(
        ["mechanism", "SW requests", "blocked", "blocked %", "SW scripts matched"],
        rows,
    ))

    # A counterfactual: an extension that CAN see SW requests, armed with a
    # push-aware list blocking the networks' push API endpoints.
    push_rules = "\n".join(
        f"||api.{domain}^" for domain in dataset.ecosystem.network_domains.values()
    )
    aware = AdBlockerExtension(
        name="hypothetical SW-aware blocker",
        filters=FilterList.parse(push_rules),
        sees_sw_requests=True,
    )
    blocked = sum(1 for r in sw_requests if aware.would_block(r))
    print(f"\nCounterfactual: an SW-aware extension with push-endpoint rules "
          f"would block {blocked}/{len(sw_requests)} "
          f"({100.0 * blocked / max(len(sw_requests), 1):.1f}%) of SW requests —")
    print("the visibility gap, not the filter lists, is the bottleneck.")


if __name__ == "__main__":
    main()
