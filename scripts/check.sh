#!/usr/bin/env bash
# The single pre-merge gate: pushlint + mypy (when installed) + tier-1 pytest.
# Usage: scripts/check.sh [extra pytest args...]
set -u -o pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

failures=0

step() {
    echo
    echo "==> $1"
}

step "pushlint (python -m repro.analysis src/repro benchmarks)"
python -m repro.analysis src/repro benchmarks || failures=$((failures + 1))

# The whole-program passes run twice: a first (possibly cold) run that
# warms the content-hash summary cache, then a timed cached run that must
# fit the wall-time budget — the property that lets --flow sit in this
# gate. Override with PUSHLINT_FLOW_BUDGET (seconds).
step "pushlint --flow (cached run under ${PUSHLINT_FLOW_BUDGET:-10}s budget)"
flow_cache="$(mktemp /tmp/pushlint_flow.XXXXXX.json)"
python -m repro.analysis --flow --flow-cache "$flow_cache" src/repro \
    || failures=$((failures + 1))
python - "$flow_cache" "${PUSHLINT_FLOW_BUDGET:-10}" <<'PYEOF' || failures=$((failures + 1))
import subprocess, sys, time

cache, budget = sys.argv[1], float(sys.argv[2])
start = time.perf_counter()
proc = subprocess.run(
    [sys.executable, "-m", "repro.analysis", "--flow",
     "--flow-cache", cache, "src/repro"],
    capture_output=True, text=True,
)
elapsed = time.perf_counter() - start
sys.stdout.write(proc.stdout)
sys.stderr.write(proc.stderr)
print(f"cached --flow run: {elapsed:.2f}s (budget {budget:.0f}s)")
if proc.returncode != 0:
    sys.exit(proc.returncode)
if elapsed > budget:
    print(f"check.sh: cached --flow run blew the {budget:.0f}s budget")
    sys.exit(1)
PYEOF

# The shape/dtype passes (symbolic extent + promotion + sort stability)
# get their own isolated warm-cache budget: the scope construction and
# the param-extent fixpoint must never come to dominate the gate.
# Override with PUSHLINT_SHAPE_BUDGET (seconds).
step "pushlint --flow shape passes (--select dense/promotion/order under ${PUSHLINT_SHAPE_BUDGET:-10}s budget)"
python - "$flow_cache" "${PUSHLINT_SHAPE_BUDGET:-10}" <<'PYEOF' || failures=$((failures + 1))
import subprocess, sys, time

cache, budget = sys.argv[1], float(sys.argv[2])
start = time.perf_counter()
proc = subprocess.run(
    [sys.executable, "-m", "repro.analysis", "--flow", "--select",
     "flow-dense-alloc,flow-dtype-promotion,flow-unstable-order",
     "--flow-cache", cache, "src/repro"],
    capture_output=True, text=True,
)
elapsed = time.perf_counter() - start
sys.stdout.write(proc.stdout)
sys.stderr.write(proc.stderr)
print(f"cached shape-pass run: {elapsed:.2f}s (budget {budget:.0f}s)")
if proc.returncode != 0:
    sys.exit(proc.returncode)
if elapsed > budget:
    print(f"check.sh: cached shape-pass run blew the {budget:.0f}s budget")
    sys.exit(1)
PYEOF
rm -f "$flow_cache"

# The cold parse has its own budget: --flow-workers 2 fans the AST
# extraction over an ExecutionPlan, and the result must be byte-identical
# to a serial cold run. Override with PUSHLINT_FLOW_COLD_BUDGET (seconds).
step "pushlint --flow cold parse (--flow-workers 2 under ${PUSHLINT_FLOW_COLD_BUDGET:-25}s budget, byte-identity vs serial)"
python - "${PUSHLINT_FLOW_COLD_BUDGET:-25}" <<'PYEOF' || failures=$((failures + 1))
import subprocess, sys, tempfile, time

budget = float(sys.argv[1])

def cold_run(workers):
    with tempfile.NamedTemporaryFile(suffix=".json") as cache:
        start = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--flow",
             "--flow-workers", str(workers), "--format", "json",
             "--flow-cache", cache.name, "src/repro"],
            capture_output=True, text=True,
        )
        return proc, time.perf_counter() - start

serial, _ = cold_run(1)
parallel, elapsed = cold_run(2)
sys.stderr.write(parallel.stderr)
print(f"cold --flow-workers 2 run: {elapsed:.2f}s (budget {budget:.0f}s)")
if serial.returncode != 0 or parallel.returncode != 0:
    sys.exit(serial.returncode or parallel.returncode)
if serial.stdout != parallel.stdout:
    print("check.sh: --flow-workers 2 changed the --flow output bytes")
    sys.exit(1)
if elapsed > budget:
    print(f"check.sh: cold --flow run blew the {budget:.0f}s budget")
    sys.exit(1)
print("cold --flow run: workers=2 output byte-identical to serial")
PYEOF

step "mypy (strict: repro.util, repro.analysis)"
if python -c "import mypy" >/dev/null 2>&1; then
    python -m mypy src/repro/util src/repro/analysis || failures=$((failures + 1))
else
    echo "mypy not installed; skipping (config lives in pyproject.toml)"
fi

step "tier-1 pytest (DeprecationWarning is an error)"
python -m pytest -x -q -W error::DeprecationWarning "$@" || failures=$((failures + 1))

step "crawl smoke (crawl_workers=2 byte-identity at scale 0.015)"
python - <<'PYEOF' || failures=$((failures + 1))
import dataclasses, json

from repro import paper_scenario, run_full_crawl

config = paper_scenario(seed=3, scale=0.015)

def fingerprint(ds):
    return json.dumps(
        [dataclasses.asdict(r) for r in ds.records], sort_keys=True
    )

serial = run_full_crawl(config=config, crawl_workers=1)
sharded = run_full_crawl(config=config, crawl_workers=2, shard_size=4)
assert fingerprint(serial) == fingerprint(sharded), \
    "crawl_workers=2 changed the dataset bytes"
assert serial.summary() == sharded.summary()
print("crawl smoke: workers=2 dataset byte-identical to serial")
PYEOF

# DetSan: rerun the two pipeline halves under the runtime determinism
# sanitizer — filesystem enumeration shuffled, tile submission permuted,
# per-tile checksums verified against canonical recomputes — and demand
# the same output bytes as an unperturbed run. The permutation seed is
# randomized per invocation (printed for replay; pin with DETSAN_SEED).
step "DetSan (crawl_workers=2 byte-identity + miner stage sweep under permuted order)"
DETSAN_SEED="${DETSAN_SEED:-$RANDOM}" python - <<'PYEOF' || failures=$((failures + 1))
import dataclasses, json, os

from repro import PushAdMiner, paper_scenario, run_full_crawl
from repro.analysis.sanitizer import DetSan, _checksum

seed = int(os.environ["DETSAN_SEED"])
print(f"DetSan seed: {seed} (replay with DETSAN_SEED={seed})")
config = paper_scenario(seed=3, scale=0.015)

def fingerprint(ds):
    return json.dumps(
        [dataclasses.asdict(r) for r in ds.records], sort_keys=True
    )

plain = run_full_crawl(config=config, crawl_workers=2, shard_size=4)
with DetSan(seed=seed, verify_tiles=True) as san:
    perturbed = run_full_crawl(config=config, crawl_workers=2, shard_size=4)
assert san.report.streams_permuted > 0, "sanitizer never engaged the crawl"
assert not san.report.divergences, san.report.divergences
assert fingerprint(plain) == fingerprint(perturbed), \
    "crawl bytes changed under permuted tile submission order"
print(
    f"DetSan crawl: byte-identical under {san.report.streams_permuted} "
    f"permuted stream(s), {san.report.tiles_verified} tile(s) verified"
)

miner = PushAdMiner.for_dataset(plain)
baseline = _checksum(miner.run(plain.valid_records))
with DetSan(seed=seed + 1, verify_tiles=True) as san:
    shaken = _checksum(miner.run(plain.valid_records))
assert not san.report.divergences, san.report.divergences
assert baseline == shaken, "miner output changed under DetSan"
print(
    f"DetSan miner: stage sweep identical "
    f"({san.report.fs_shuffled} enumeration(s) shuffled, "
    f"{san.report.tiles_checksummed} tile(s) checksummed)"
)
PYEOF

step "bench smoke (scripts/bench.sh --smoke)"
bench_out="$(mktemp /tmp/bench_smoke.XXXXXX.json)"
scripts/bench.sh --smoke --output "$bench_out" || failures=$((failures + 1))
rm -f "$bench_out"

step "bench compare (scripts/bench.sh --compare BENCH_pipeline.json)"
if [ -f BENCH_pipeline.json ]; then
    scripts/bench.sh --compare BENCH_pipeline.json || failures=$((failures + 1))
else
    echo "no committed BENCH_pipeline.json; skipping"
fi

# Scale sweep: re-run the blocked sparse pipeline at the committed
# baseline's scales and fail on counter drift, dense-fraction ceiling
# breaches, or growth-exponent drift (superlinear growth creeping back).
step "scale sweep compare (python -m repro.bench --scale-sweep --compare BENCH_scale.json)"
if [ -f BENCH_scale.json ]; then
    python -m repro.bench --scale-sweep --compare BENCH_scale.json \
        || failures=$((failures + 1))
else
    echo "no committed BENCH_scale.json; skipping"
fi

# Serve stack: build a snapshot at reduced scale, drive the load generator
# at 1/2/4 threads and demand one response checksum across all counts
# (cache on, cold per count). The committed BENCH_serve.json then gates
# checksum + QPS drift exactly like the pipeline baseline above.
step "serve smoke (python -m repro.bench --serve --smoke)"
serve_out="$(mktemp /tmp/bench_serve_smoke.XXXXXX.json)"
python -m repro.bench --serve --smoke --output "$serve_out" \
    || failures=$((failures + 1))
rm -f "$serve_out"

step "serve compare (python -m repro.bench --serve --compare BENCH_serve.json)"
if [ -f BENCH_serve.json ]; then
    python -m repro.bench --serve --compare BENCH_serve.json \
        || failures=$((failures + 1))
else
    echo "no committed BENCH_serve.json; skipping"
fi

# Incremental stack: absorb a held-out batch against a base mine and
# demand the delta stays a small fraction of a full re-mine. The smoke
# run proves the harness; the committed BENCH_incremental.json gates the
# absorb/full wall ratio (15% ceiling) plus assigned/opened/summary
# determinism exactly like the other baselines.
step "incremental smoke (python -m repro.bench --incremental --smoke)"
incr_out="$(mktemp /tmp/bench_incr_smoke.XXXXXX.json)"
python -m repro.bench --incremental --smoke --output "$incr_out" \
    || failures=$((failures + 1))
rm -f "$incr_out"

step "incremental compare (python -m repro.bench --incremental --compare BENCH_incremental.json)"
if [ -f BENCH_incremental.json ]; then
    python -m repro.bench --incremental --compare BENCH_incremental.json \
        || failures=$((failures + 1))
else
    echo "no committed BENCH_incremental.json; skipping"
fi

echo
if [ "$failures" -ne 0 ]; then
    echo "check.sh: FAILED ($failures step(s) failed)"
    exit 1
fi
echo "check.sh: all checks passed"
