#!/usr/bin/env bash
# The single pre-merge gate: pushlint + mypy (when installed) + tier-1 pytest.
# Usage: scripts/check.sh [extra pytest args...]
set -u -o pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

failures=0

step() {
    echo
    echo "==> $1"
}

step "pushlint (python -m repro.analysis src/repro)"
python -m repro.analysis src/repro || failures=$((failures + 1))

# The whole-program passes run twice: a first (possibly cold) run that
# warms the content-hash summary cache, then a timed cached run that must
# fit the wall-time budget — the property that lets --flow sit in this
# gate. Override with PUSHLINT_FLOW_BUDGET (seconds).
step "pushlint --flow (cached run under ${PUSHLINT_FLOW_BUDGET:-10}s budget)"
flow_cache="$(mktemp /tmp/pushlint_flow.XXXXXX.json)"
python -m repro.analysis --flow --flow-cache "$flow_cache" src/repro \
    || failures=$((failures + 1))
python - "$flow_cache" "${PUSHLINT_FLOW_BUDGET:-10}" <<'PYEOF' || failures=$((failures + 1))
import subprocess, sys, time

cache, budget = sys.argv[1], float(sys.argv[2])
start = time.perf_counter()
proc = subprocess.run(
    [sys.executable, "-m", "repro.analysis", "--flow",
     "--flow-cache", cache, "src/repro"],
    capture_output=True, text=True,
)
elapsed = time.perf_counter() - start
sys.stdout.write(proc.stdout)
sys.stderr.write(proc.stderr)
print(f"cached --flow run: {elapsed:.2f}s (budget {budget:.0f}s)")
if proc.returncode != 0:
    sys.exit(proc.returncode)
if elapsed > budget:
    print(f"check.sh: cached --flow run blew the {budget:.0f}s budget")
    sys.exit(1)
PYEOF
rm -f "$flow_cache"

step "mypy (strict: repro.util, repro.analysis)"
if python -c "import mypy" >/dev/null 2>&1; then
    python -m mypy src/repro/util src/repro/analysis || failures=$((failures + 1))
else
    echo "mypy not installed; skipping (config lives in pyproject.toml)"
fi

step "tier-1 pytest (DeprecationWarning is an error)"
python -m pytest -x -q -W error::DeprecationWarning "$@" || failures=$((failures + 1))

step "crawl smoke (crawl_workers=2 byte-identity at scale 0.015)"
python - <<'PYEOF' || failures=$((failures + 1))
import dataclasses, json

from repro import paper_scenario, run_full_crawl

config = paper_scenario(seed=3, scale=0.015)

def fingerprint(ds):
    return json.dumps(
        [dataclasses.asdict(r) for r in ds.records], sort_keys=True
    )

serial = run_full_crawl(config=config, crawl_workers=1)
sharded = run_full_crawl(config=config, crawl_workers=2, shard_size=4)
assert fingerprint(serial) == fingerprint(sharded), \
    "crawl_workers=2 changed the dataset bytes"
assert serial.summary() == sharded.summary()
print("crawl smoke: workers=2 dataset byte-identical to serial")
PYEOF

step "bench smoke (scripts/bench.sh --smoke)"
bench_out="$(mktemp /tmp/bench_smoke.XXXXXX.json)"
scripts/bench.sh --smoke --output "$bench_out" || failures=$((failures + 1))
rm -f "$bench_out"

step "bench compare (scripts/bench.sh --compare BENCH_pipeline.json)"
if [ -f BENCH_pipeline.json ]; then
    scripts/bench.sh --compare BENCH_pipeline.json || failures=$((failures + 1))
else
    echo "no committed BENCH_pipeline.json; skipping"
fi

echo
if [ "$failures" -ne 0 ]; then
    echo "check.sh: FAILED ($failures step(s) failed)"
    exit 1
fi
echo "check.sh: all checks passed"
