#!/usr/bin/env bash
# The single pre-merge gate: pushlint + mypy (when installed) + tier-1 pytest.
# Usage: scripts/check.sh [extra pytest args...]
set -u -o pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

failures=0

step() {
    echo
    echo "==> $1"
}

step "pushlint (python -m repro.analysis src/repro)"
python -m repro.analysis src/repro || failures=$((failures + 1))

step "mypy (strict: repro.util, repro.analysis)"
if python -c "import mypy" >/dev/null 2>&1; then
    python -m mypy src/repro/util src/repro/analysis || failures=$((failures + 1))
else
    echo "mypy not installed; skipping (config lives in pyproject.toml)"
fi

step "tier-1 pytest"
python -m pytest -x -q "$@" || failures=$((failures + 1))

echo
if [ "$failures" -ne 0 ]; then
    echo "check.sh: FAILED ($failures step(s) failed)"
    exit 1
fi
echo "check.sh: all checks passed"
