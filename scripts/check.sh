#!/usr/bin/env bash
# The single pre-merge gate: pushlint + mypy (when installed) + tier-1 pytest.
# Usage: scripts/check.sh [extra pytest args...]
set -u -o pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

failures=0

step() {
    echo
    echo "==> $1"
}

step "pushlint (python -m repro.analysis src/repro)"
python -m repro.analysis src/repro || failures=$((failures + 1))

step "mypy (strict: repro.util, repro.analysis)"
if python -c "import mypy" >/dev/null 2>&1; then
    python -m mypy src/repro/util src/repro/analysis || failures=$((failures + 1))
else
    echo "mypy not installed; skipping (config lives in pyproject.toml)"
fi

step "tier-1 pytest (DeprecationWarning is an error)"
python -m pytest -x -q -W error::DeprecationWarning "$@" || failures=$((failures + 1))

step "bench smoke (scripts/bench.sh --smoke)"
bench_out="$(mktemp /tmp/bench_smoke.XXXXXX.json)"
scripts/bench.sh --smoke --output "$bench_out" || failures=$((failures + 1))
rm -f "$bench_out"

step "bench compare (scripts/bench.sh --compare BENCH_pipeline.json)"
if [ -f BENCH_pipeline.json ]; then
    scripts/bench.sh --compare BENCH_pipeline.json || failures=$((failures + 1))
else
    echo "no committed BENCH_pipeline.json; skipping"
fi

echo
if [ "$failures" -ne 0 ]; then
    echo "check.sh: FAILED ($failures step(s) failed)"
    exit 1
fi
echo "check.sh: all checks passed"
