#!/usr/bin/env bash
# Pipeline benchmark: runs crawl + PushAdMiner under a PerfClock tracer and
# writes BENCH_pipeline.json (per-stage wall time, peak matrix bytes,
# perf config, speedup vs committed baseline, record/cluster counters).
# Usage: scripts/bench.sh [--smoke] [--seed N] [--scale F] [--output PATH]
#                         [--workers N] [--tile-size N]
#                         [--precision float64|float32]
#                         [--storage dense|condensed]
#        scripts/bench.sh --compare [BASELINE] [--tolerance F] [--min-wall S]
#   --compare re-runs the committed baseline's scenario and exits nonzero on
#   a >tolerance wall-time regression in any pipeline stage or summary drift.
set -eu -o pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

exec python -m repro.bench "$@"
