#!/usr/bin/env bash
# Pipeline benchmark: runs crawl + PushAdMiner under a PerfClock tracer and
# writes BENCH_pipeline.json (per-stage wall time, peak matrix bytes,
# record/cluster counters).
# Usage: scripts/bench.sh [--smoke] [--seed N] [--scale F] [--output PATH]
set -eu -o pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

exec python -m repro.bench "$@"
