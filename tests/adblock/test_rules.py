"""Tests for the Adblock-Plus filter rule engine."""

import pytest

from repro.adblock.rules import FilterList, parse_rule


class TestParseRule:
    def test_comment_skipped(self):
        assert parse_rule("! a comment") is None
        assert parse_rule("[Adblock Plus 2.0]") is None
        assert parse_rule("") is None

    def test_element_hiding_skipped(self):
        assert parse_rule("example.com##.ad-banner") is None

    def test_plain_substring(self):
        rule = parse_rule("/banner/ads/")
        assert rule.matches("https://x.com/banner/ads/img.png")
        assert not rule.matches("https://x.com/other/")

    def test_exception_flag(self):
        rule = parse_rule("@@/goodads/")
        assert rule.is_exception
        assert rule.matches("https://x.com/goodads/ok")

    def test_domain_anchor(self):
        rule = parse_rule("||ads.example.com^")
        assert rule.matches("https://ads.example.com/x")
        assert rule.matches("https://sub.ads.example.com/x")
        assert not rule.matches("https://notads.example.com/x")
        assert not rule.matches("https://x.com/?u=ads.example.com")

    def test_start_anchor(self):
        rule = parse_rule("|https://exact.com/path")
        assert rule.matches("https://exact.com/path?x=1")
        assert not rule.matches("https://other.com/https://exact.com/path")

    def test_end_anchor(self):
        rule = parse_rule("/tracker.js|")
        assert rule.matches("https://x.com/tracker.js")
        assert not rule.matches("https://x.com/tracker.jsx")

    def test_wildcard(self):
        rule = parse_rule("/ads/*/banner")
        assert rule.matches("https://x.com/ads/v2/banner")

    def test_separator_placeholder(self):
        rule = parse_rule("||x.com^path")
        assert rule.matches("https://x.com/path")
        assert not rule.matches("https://x.comzpath/")

    def test_separator_at_end_matches_eol(self):
        rule = parse_rule("||x.com^")
        assert rule.matches("https://x.com")

    def test_dollar_options_parsed(self):
        rule = parse_rule("/ad.js$script,third-party")
        assert "script" in rule.options

    def test_domain_option_restricts(self):
        rule = parse_rule("/widget/$domain=news.com|blog.org")
        assert rule.matches("https://cdn.x/widget/", source_domain="news.com")
        assert rule.matches("https://cdn.x/widget/", source_domain="sub.blog.org")
        assert not rule.matches("https://cdn.x/widget/", source_domain="other.com")
        assert not rule.matches("https://cdn.x/widget/", source_domain=None)

    def test_case_insensitive(self):
        assert parse_rule("/AdFrame/").matches("https://x.com/adframe/1")


class TestFilterList:
    def test_parse_counts(self):
        text = "! comment\n/a/\n@@/a/ok/\nexample.com##.x\n"
        filters = FilterList.parse(text)
        assert len(filters.block_rules) == 1
        assert len(filters.exception_rules) == 1

    def test_exception_overrides_block(self):
        filters = FilterList.parse("/ads/\n@@/ads/acceptable/")
        assert filters.should_block("https://x.com/ads/bad.js")
        assert not filters.should_block("https://x.com/ads/acceptable/ok.js")

    def test_matching_rule_returned(self):
        filters = FilterList.parse("/ads/")
        rule = filters.matching_rule("https://x.com/ads/1")
        assert rule is not None and rule.raw == "/ads/"
        assert filters.matching_rule("https://x.com/clean") is None

    def test_empty_list_blocks_nothing(self):
        assert not FilterList.parse("").should_block("https://anything.com/")

    def test_len(self):
        assert len(FilterList.parse("/a/\n/b/\n@@/c/")) == 3


class TestThirdPartyOption:
    def test_third_party_rule_matches_cross_origin_only(self):
        rule = parse_rule("/tracker.js$third-party")
        assert rule.third_party is True
        assert rule.matches("https://cdn.ads.net/tracker.js",
                            source_domain="www.news.com")
        assert not rule.matches("https://static.news.com/tracker.js",
                                source_domain="www.news.com")

    def test_first_party_rule(self):
        rule = parse_rule("/selfpromo/$~third-party")
        assert rule.third_party is False
        assert rule.matches("https://www.news.com/selfpromo/x",
                            source_domain="news.com")
        assert not rule.matches("https://other.net/selfpromo/x",
                                source_domain="news.com")

    def test_requires_source_context(self):
        rule = parse_rule("/tracker.js$third-party")
        assert not rule.matches("https://cdn.ads.net/tracker.js")

    def test_subdomains_are_first_party(self):
        rule = parse_rule("/x/$third-party")
        assert not rule.matches("https://a.b.example.com/x/",
                                source_domain="www.example.com")

    def test_option_combination_with_domain(self):
        rule = parse_rule("/w/$domain=news.com,third-party")
        assert rule.matches("https://cdn.net/w/", source_domain="news.com")
        assert not rule.matches("https://cdn.net/w/", source_domain="blog.org")
