"""Tests for EasyList synthesis, extensions, and the Table 6 evaluation."""

import pytest

from repro.adblock.easylist import synthetic_easylist
from repro.adblock.evaluate import evaluate_blocking
from repro.adblock.extensions import AdBlockerExtension, popular_extensions
from repro.adblock.rules import FilterList
from repro.browser.network import NetworkRequest
from repro.util.urls import Url


NETWORK_DOMAINS = {
    "Ad-Maven": "admaven.com",
    "PopAds": "popads.com",
    "AdsTerra": "adsterra.com",
    "HillTopAds": "hilltopads.com",
    "OneSignal": "onesignal.com",
}


def sw_request(host, path="/v1/click/report", script="https://pub.com/sw/x-push-sw.js"):
    return NetworkRequest(
        url=Url(host=host, path=path),
        initiator="service_worker",
        sw_script_url=script,
        purpose="click_tracking",
    )


def page_request(host, path="/banner/ads/1"):
    return NetworkRequest(url=Url(host=host, path=path), initiator="page")


class TestSyntheticEasylist:
    def test_blocks_known_pop_network_clicks(self):
        filters = synthetic_easylist(NETWORK_DOMAINS)
        assert filters.should_block("https://click.popads.com/c/redirect?nid=1")

    def test_misses_push_api_of_most_networks(self):
        filters = synthetic_easylist(NETWORK_DOMAINS)
        assert not filters.should_block("https://api.admaven.com/v1/ad/resolve")
        assert not filters.should_block("https://api.onesignal.com/v1/click/report")

    def test_covers_only_legacy_api_hosts(self):
        filters = synthetic_easylist(NETWORK_DOMAINS)
        assert filters.should_block("https://legacy-api.adsterra.com/v1/click/report")
        assert filters.should_block("https://legacy-api.admaven.com/v1/ad/resolve")

    def test_never_matches_sw_scripts(self):
        filters = synthetic_easylist(NETWORK_DOMAINS)
        assert not filters.should_block("https://pub.com/sw/admaven-push-sw.js")

    def test_handles_missing_networks(self):
        filters = synthetic_easylist({})
        assert len(filters) > 0


class TestExtensions:
    def test_blind_to_sw_requests(self):
        filters = FilterList.parse("/v1/click/")
        extension = AdBlockerExtension("test", filters)
        assert not extension.would_block(sw_request("api.popads.com"))
        assert extension.blocked_count == 0

    def test_blocks_page_requests_it_has_rules_for(self):
        filters = FilterList.parse("/banner/ads/")
        extension = AdBlockerExtension("test", filters)
        assert extension.would_block(page_request("x.com"))
        assert extension.blocked_count == 1

    def test_sw_aware_extension_can_block(self):
        filters = FilterList.parse("/v1/click/")
        extension = AdBlockerExtension("future", filters, sees_sw_requests=True)
        assert extension.would_block(sw_request("api.popads.com"))

    def test_popular_pair(self):
        extensions = popular_extensions(FilterList.parse(""))
        assert len(extensions) == 2
        assert not any(e.sees_sw_requests for e in extensions)


class TestEvaluateBlocking:
    def test_table6_shape(self):
        requests = [sw_request("api.admaven.com") for _ in range(50)]
        requests += [sw_request("legacy-api.admaven.com") for _ in range(1)]
        rows = evaluate_blocking(requests, NETWORK_DOMAINS)
        assert len(rows) == 3
        easylist = rows[0]
        assert 0 < easylist.blocked_requests <= len(requests) * 0.05
        for extension_row in rows[1:]:
            assert extension_row.blocked_requests == 0

    def test_paper_shape_on_real_crawl(self, small_dataset):
        rows = evaluate_blocking(
            small_dataset.sw_requests, small_dataset.ecosystem.network_domains
        )
        easylist, ext_a, ext_b = rows
        # The paper's "<2%" holds at study scale; a 3%-scale crawl has only
        # a handful of legacy-SDK origins, so allow small-sample variance
        # while still asserting EasyList misses nearly everything.
        assert easylist.blocked_pct < 5.0
        assert ext_a.blocked_requests == 0       # extensions blocked none
        assert ext_b.blocked_requests == 0
        assert easylist.sw_scripts_matched == 0  # SW scripts unfiltered

    def test_empty_requests(self):
        rows = evaluate_blocking([], NETWORK_DOMAINS)
        assert rows[0].blocked_pct == 0.0
