"""MinedSnapshot: export determinism, round-trips, integrity refusals."""

import json

import numpy as np
import pytest

from repro.serve import (
    SNAPSHOT_SCHEMA,
    MinedSnapshot,
    SnapshotError,
    SnapshotIntegrityError,
    SnapshotSchemaError,
    canonical_json,
)
from repro.serve.snapshot import content_hash, decode_array, encode_array


class TestExport:
    def test_schema_tag(self, snapshot):
        assert snapshot.schema == SNAPSHOT_SCHEMA

    def test_export_is_deterministic(self, snapshot, small_result):
        again = MinedSnapshot.from_result(small_result)
        assert again.to_json() == snapshot.to_json()
        assert again.hash == snapshot.hash

    def test_hash_matches_contents(self, snapshot):
        payload = json.loads(snapshot.to_json())
        assert payload["content_hash"] == content_hash(payload)

    def test_url_tokens_stored_sorted(self, snapshot):
        for row in snapshot.records:
            assert row["url_tokens"] == sorted(row["url_tokens"])

    def test_provenance_carries_config_and_stage_hashes(self, snapshot):
        provenance = snapshot.provenance
        assert provenance["seed"] == snapshot.provenance["config"]["seed"]
        assert set(provenance["stage_hashes"]) == {
            "records", "model", "campaigns", "verdicts", "urls",
        }
        assert provenance["config_fingerprint"]

    def test_unfitted_result_is_rejected(self, small_result):
        import dataclasses

        bare = dataclasses.replace(small_result, text_model=None)
        with pytest.raises(SnapshotError, match="fitted text model"):
            MinedSnapshot.from_result(bare)


class TestRoundTrip:
    def test_save_load_identity(self, snapshot, snapshot_path):
        loaded = MinedSnapshot.load(snapshot_path)
        assert loaded.to_json() == snapshot.to_json()
        assert loaded.hash == snapshot.hash

    def test_from_json_identity(self, snapshot):
        assert MinedSnapshot.from_json(snapshot.to_json()).hash == snapshot.hash

    def test_model_arrays_are_byte_exact(self, snapshot, snapshot_path):
        loaded = MinedSnapshot.load(snapshot_path)
        original = decode_array(snapshot.model["embeddings"])
        restored = decode_array(loaded.model["embeddings"])
        assert original.tobytes() == restored.tobytes()

    def test_encode_decode_array_round_trip(self):
        array = np.array([[0.1, -2.5e-17], [np.pi, 4.0]])
        restored = decode_array(encode_array(array))
        assert restored.shape == array.shape
        assert restored.tobytes() == array.tobytes()


class TestIntegrity:
    def test_tampered_payload_is_refused(self, snapshot):
        payload = json.loads(snapshot.to_json())
        payload["cut_threshold"] = payload["cut_threshold"] + 0.01
        with pytest.raises(SnapshotIntegrityError, match="hash mismatch"):
            MinedSnapshot.from_payload(payload)

    def test_stale_hash_is_refused(self, snapshot):
        payload = json.loads(snapshot.to_json())
        payload["content_hash"] = "0" * 32
        with pytest.raises(SnapshotIntegrityError) as excinfo:
            MinedSnapshot.from_payload(payload)
        message = str(excinfo.value)
        assert "0" * 32 in message  # names the recorded hash
        assert "stale" in message

    def test_verify_false_skips_the_hash_check(self, snapshot):
        payload = json.loads(snapshot.to_json())
        payload["content_hash"] = "0" * 32
        assert MinedSnapshot.from_payload(payload, verify=False).hash == "0" * 32

    def test_unknown_schema_is_refused(self, snapshot):
        payload = json.loads(snapshot.to_json())
        payload["schema"] = "repro-snapshot/99"
        with pytest.raises(SnapshotSchemaError, match="repro-snapshot/99"):
            MinedSnapshot.from_payload(payload)

    def test_missing_schema_is_refused(self):
        with pytest.raises(SnapshotSchemaError):
            MinedSnapshot.from_payload({"content_hash": ""})

    def test_invalid_json_is_a_snapshot_error(self):
        with pytest.raises(SnapshotError, match="not valid JSON"):
            MinedSnapshot.from_json("{nope")

    def test_non_object_payload_is_a_snapshot_error(self):
        with pytest.raises(SnapshotError, match="JSON object"):
            MinedSnapshot.from_json("[1,2,3]")


class TestCanonicalJson:
    def test_sorted_keys_no_whitespace(self):
        assert canonical_json({"b": 1, "a": [1.5, None]}) == '{"a":[1.5,null],"b":1}'

    def test_floats_round_trip_exactly(self):
        value = 0.21233822600867486
        assert json.loads(canonical_json({"x": value}))["x"] == value
