"""``python -m repro.serve``: one-shot query commands + process identity.

The two-process test is the ISSUE's acceptance criterion verbatim: export a
snapshot, load it in two *separate* interpreter processes, answer the same
fixed query set, and demand byte-identical output.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.serve import canonical_json
from repro.serve.__main__ import main

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)


class TestMain:
    def test_stats(self, snapshot_path, core, capsys):
        rc = main(["--snapshot", snapshot_path, "stats"])
        assert rc == 0
        assert capsys.readouterr().out.strip() == canonical_json(core.stats())

    def test_check(self, snapshot_path, core, known_url, capsys):
        rc = main(["--snapshot", snapshot_path, "check", known_url])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert out == core.check(known_url)

    def test_classify(self, snapshot_path, capsys):
        rc = main([
            "--snapshot", snapshot_path, "classify",
            "--title", "You won", "--body", "claim your prize",
        ])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert out["kind"] == "classify"

    def test_campaign_unknown_id_exits_1(self, snapshot_path, capsys):
        rc = main(["--snapshot", snapshot_path, "campaign", "999999999"])
        assert rc == 1
        assert "no campaign" in capsys.readouterr().err

    def test_missing_snapshot_exits_2(self, tmp_path, capsys):
        rc = main(["--snapshot", str(tmp_path / "nope.json"), "stats"])
        assert rc == 2
        assert "cannot load snapshot" in capsys.readouterr().err

    def test_corrupt_snapshot_exits_2(self, snapshot, tmp_path, capsys):
        payload = json.loads(snapshot.to_json())
        payload["cut_threshold"] = 0.5  # breaks the content hash
        stale = tmp_path / "stale.json"
        stale.write_text(canonical_json(payload), encoding="utf-8")
        rc = main(["--snapshot", str(stale), "stats"])
        assert rc == 2
        assert "hash mismatch" in capsys.readouterr().err

    def test_no_cache_answers_identically(self, snapshot_path, known_url, capsys):
        main(["--snapshot", snapshot_path, "check", known_url])
        with_cache = capsys.readouterr().out
        main(["--snapshot", snapshot_path, "--no-cache", "check", known_url])
        assert capsys.readouterr().out == with_cache


# One script, run twice: load the snapshot, answer a fixed query set,
# print every canonical response line. stdout must be byte-identical.
_QUERY_SCRIPT = """\
import sys
from repro.serve import MinedSnapshot, ServeCore, canonical_json, \\
    generate_requests
from repro.serve.loadgen import _dispatch

snapshot = MinedSnapshot.load(sys.argv[1])
core = ServeCore(snapshot, workers=int(sys.argv[2]))
for request in generate_requests(snapshot, 30, seed=17):
    sys.stdout.write(canonical_json(_dispatch(core, request)) + "\\n")
"""


def _query_in_subprocess(snapshot_path, workers):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-c", _QUERY_SCRIPT, snapshot_path, str(workers)],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestTwoProcessIdentity:
    def test_fixed_queries_are_byte_identical_across_processes(
        self, snapshot_path
    ):
        first = _query_in_subprocess(snapshot_path, workers=1)
        second = _query_in_subprocess(snapshot_path, workers=1)
        assert first  # the script actually answered something
        assert first == second

    def test_worker_count_does_not_change_the_bytes(self, snapshot_path):
        serial = _query_in_subprocess(snapshot_path, workers=1)
        parallel = _query_in_subprocess(snapshot_path, workers=4)
        assert serial == parallel
