"""ServeCore: query semantics and the byte-identity determinism contract."""

import pytest

from repro.obs import Tracer
from repro.serve import (
    RESPONSE_SCHEMA,
    MinedSnapshot,
    ServeCore,
    UnknownCampaignError,
    canonical_json,
)

from tests.serve.conftest import answer_fixed_queries


def _bytes(responses):
    return "\n".join(canonical_json(r) for r in responses)


class TestCheck:
    def test_known_url(self, core, snapshot, known_url):
        response = core.check(known_url)
        entry = snapshot.urls[known_url]
        assert response["schema"] == RESPONSE_SCHEMA
        assert response["kind"] == "check"
        assert response["known"] is True
        assert response["wpn_ids"] == list(entry["wpn_ids"])
        assert response["cluster_ids"] == list(entry["cluster_ids"])
        assert response["flagged_by_blocklist"] == entry["flagged"]

    def test_unknown_url(self, core):
        response = core.check("https://never-crawled.example/landing")
        assert response["known"] is False
        assert response["wpn_ids"] == []
        assert response["is_malicious"] is False

    def test_unparseable_url_degrades_to_no_etld1(self, core):
        response = core.check("not a url at all")
        assert response["landing_etld1"] is None
        assert response["suspicious_infrastructure"] is False

    def test_batch_matches_singles(self, core, fixed_queries):
        urls = fixed_queries["check"]
        assert core.check_batch(urls) == [core.check(u) for u in urls]


class TestClassify:
    def test_own_record_is_assigned_to_its_cluster(self, core, snapshot):
        row = snapshot.records[0]
        response = core.classify(
            {
                "title": " ".join(row["text_tokens"]),
                "body": "",
                "landing_url": row["landing_url"],
            }
        )
        assert response["kind"] == "classify"
        assert response["assigned"] is True
        assert response["distance"] <= snapshot.cut_threshold
        assert response["nearest"]["cluster_id"] == row["cluster_id"]
        assert response["campaign"]["cluster_id"] == row["cluster_id"]

    def test_far_query_is_not_assigned(self, core):
        response = core.classify(
            {
                "title": "zzqx qwyjibo flurble",
                "body": "gnarp vexqu blarnish",
                "landing_url": None,
            }
        )
        assert response["assigned"] is False
        assert response["campaign"] is None
        assert response["verdict"] == {"is_ad": False, "is_malicious": False}

    def test_non_mapping_is_a_type_error(self, core):
        with pytest.raises(TypeError, match="mapping"):
            core.classify("just a string")

    def test_batch_matches_singles(self, snapshot, fixed_queries):
        fresh = ServeCore(snapshot, cache_size=0)
        wpns = fixed_queries["classify"]
        batched = fresh.classify_batch(wpns)
        assert batched == [fresh.classify(w) for w in wpns]


class TestCampaignAndStats:
    def test_campaign_dossier(self, core, snapshot):
        cluster_id = int(sorted(snapshot.campaigns.values(),
                                key=lambda c: c["cluster_id"])[0]["cluster_id"])
        response = core.campaign(cluster_id)
        assert response["kind"] == "campaign"
        assert response["cluster_id"] == cluster_id
        assert response["wpn_ids"] == sorted(response["wpn_ids"])

    def test_unknown_campaign_raises(self, core):
        with pytest.raises(UnknownCampaignError, match="no campaign"):
            core.campaign(10**9)

    def test_stats_headline_numbers(self, core, snapshot):
        response = core.stats()
        assert response["kind"] == "stats"
        assert response["records"] == snapshot.n_records
        assert response["clusters"] == len(snapshot.campaigns)
        assert response["known_urls"] == len(snapshot.urls)
        assert response["snapshot"]["content_hash"] == snapshot.hash
        assert response["cut_threshold"] == snapshot.cut_threshold


class TestDeterminism:
    """The ISSUE's contract: same snapshot -> same bytes, whatever the knobs."""

    def test_worker_counts_are_byte_identical(self, snapshot, fixed_queries):
        outputs = {
            workers: _bytes(
                answer_fixed_queries(
                    ServeCore(snapshot, workers=workers), fixed_queries
                )
            )
            for workers in (1, 2, 4)
        }
        assert outputs[1] == outputs[2] == outputs[4]

    def test_tile_sizes_are_byte_identical(self, snapshot, fixed_queries):
        reference = _bytes(
            answer_fixed_queries(ServeCore(snapshot), fixed_queries)
        )
        for tile_size in (3, 7, 1000):
            tiled = _bytes(
                answer_fixed_queries(
                    ServeCore(snapshot, tile_size=tile_size), fixed_queries
                )
            )
            assert tiled == reference, f"tile_size={tile_size} changed bytes"

    def test_cache_on_off_byte_identical(self, snapshot, fixed_queries):
        cached = ServeCore(snapshot, cache_size=64)
        uncached = ServeCore(snapshot, cache_size=0)
        first = _bytes(answer_fixed_queries(cached, fixed_queries))
        # Second pass over the cached core is served from the cache.
        replay = _bytes(answer_fixed_queries(cached, fixed_queries))
        cold = _bytes(answer_fixed_queries(uncached, fixed_queries))
        assert first == replay == cold
        assert cached.cache_info()["hits"] > 0
        assert uncached.cache_info() == {
            "enabled": False, "hits": 0, "misses": 0, "size": 0, "maxsize": 0,
        }

    def test_loaded_snapshot_answers_like_the_original(
        self, snapshot, snapshot_path, fixed_queries
    ):
        reloaded = MinedSnapshot.load(snapshot_path)
        assert _bytes(
            answer_fixed_queries(ServeCore(reloaded), fixed_queries)
        ) == _bytes(answer_fixed_queries(ServeCore(snapshot), fixed_queries))


class TestCacheCounters:
    def test_repeat_queries_hit(self, snapshot, known_url):
        fresh = ServeCore(snapshot)
        fresh.check(known_url)
        info = fresh.cache_info()
        assert info == {
            "enabled": True, "hits": 0, "misses": 1, "size": 1,
            "maxsize": 1024,
        }
        fresh.check(known_url)
        assert fresh.cache_info()["hits"] == 1

    def test_stats_is_never_cached(self, snapshot):
        fresh = ServeCore(snapshot)
        fresh.stats()
        fresh.stats()
        assert fresh.cache_info() == {
            "enabled": True, "hits": 0, "misses": 0, "size": 0,
            "maxsize": 1024,
        }


class TestTracing:
    def test_serve_spans_carry_cache_gauges(self, snapshot, known_url):
        tracer = Tracer()
        traced = ServeCore(snapshot, tracer=tracer)
        traced.check(known_url)
        traced.check(known_url)
        traced.classify({"title": "hi", "body": "", "landing_url": None})
        traced.stats()
        tracer.finish()
        spans = [s for s in tracer.root.walk() if s.name.startswith("serve.")]
        names = [s.name for s in spans]
        assert names == [
            "serve.check", "serve.check", "serve.classify", "serve.stats",
        ]
        first, second = spans[0], spans[1]
        assert first.metrics["cache_misses"] == 1
        assert second.metrics["cache_hits"] == 1
