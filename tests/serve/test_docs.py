"""Doc drift for the serving layer (same pattern as the pushlint catalog).

Every public ``repro.serve`` symbol must appear as inline code in
docs/API.md, and docs/SERVING.md must exist and cover the load-bearing
concepts (schema tag, hash verification, cache byte-identity).
"""

from pathlib import Path

import repro.serve

REPO_ROOT = Path(__file__).resolve().parents[2]
API_DOC = REPO_ROOT / "docs" / "API.md"
SERVING_DOC = REPO_ROOT / "docs" / "SERVING.md"


def test_docs_exist():
    assert API_DOC.is_file()
    assert SERVING_DOC.is_file()


def test_every_public_serve_symbol_is_documented():
    # A symbol counts as documented whether it is rendered bare
    # (`ServeCore`) or with its call signature (`canonical_json(obj)`).
    text = API_DOC.read_text(encoding="utf-8")
    missing = [
        name
        for name in repro.serve.__all__
        if f"`{name}`" not in text and f"`{name}(" not in text
    ]
    assert not missing, f"serve symbols absent from docs/API.md: {missing}"


def test_serving_doc_covers_the_contract():
    text = SERVING_DOC.read_text(encoding="utf-8")
    for needle in (
        "repro-snapshot/1",      # the schema tag
        "content hash",          # integrity verification
        "byte-identical",        # the determinism guarantee
        "cache",                 # response-cache semantics
        "python -m repro.serve", # the CLI entry point
        "BENCH_serve.json",      # the committed bench baseline
    ):
        assert needle in text, f"docs/SERVING.md lost its {needle!r} coverage"


def test_serving_doc_is_cross_linked():
    for doc in ("README.md", "docs/PERFORMANCE.md", "docs/OBSERVABILITY.md"):
        text = (REPO_ROOT / doc).read_text(encoding="utf-8")
        assert "SERVING.md" in text, f"{doc} does not link docs/SERVING.md"
