"""``ServeCore.refresh``: atomic hot-swap + cache invalidation.

Two snapshots from the same corpus family — the full small run and a
mine of a strict subset — are swapped back and forth.  Correctness does
not depend on the cache clear: keys are salted with the snapshot content
hash, so the staleness tests also run with ``clear()`` disabled, and the
hammer test asserts every concurrent response matches one of the two
snapshots' canonical answers (never a mix).
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.pipeline import MinerConfig, PushAdMiner
from repro.serve import MinedSnapshot, ServeCore


@pytest.fixture(scope="module")
def old_snapshot(small_dataset):
    subset = small_dataset.valid_records[:-40]
    config = MinerConfig(seed=small_dataset.config.seed)
    return MinedSnapshot.from_result(PushAdMiner(config).run(subset))


@pytest.fixture(scope="module")
def divergent_url(old_snapshot, snapshot):
    """A landing URL the new snapshot knows but the old one does not."""
    fresh_only = sorted(set(snapshot.urls) - set(old_snapshot.urls))
    assert fresh_only
    return fresh_only[0]


def _canonical(response):
    return json.dumps(response, sort_keys=True)


def test_refresh_swaps_snapshot_and_returns_hash(old_snapshot, snapshot):
    core = ServeCore(old_snapshot)
    assert core.snapshot.hash == old_snapshot.hash
    returned = core.refresh(snapshot)
    assert returned == snapshot.hash
    assert core.snapshot.hash == snapshot.hash
    assert core.stats()["records"] == snapshot.n_records


def test_refresh_invalidates_cached_responses(
    old_snapshot, snapshot, divergent_url
):
    core = ServeCore(old_snapshot)
    stale = core.check(divergent_url)
    assert not stale["known"]
    assert core.check(divergent_url) == stale  # second read is the hit
    assert core.cache_info()["hits"] >= 1
    core.refresh(snapshot)
    info = core.cache_info()
    assert info["size"] == 0 and info["hits"] == 0
    fresh = core.check(divergent_url)
    assert fresh["known"]
    assert fresh != stale


def test_stale_entries_unreachable_even_without_clear(
    old_snapshot, snapshot, divergent_url, monkeypatch
):
    core = ServeCore(old_snapshot)
    before = core.check(divergent_url)
    assert not before["known"]
    monkeypatch.setattr(core._cache, "clear", lambda: None)
    core.refresh(snapshot)
    assert core.cache_info()["size"] > 0  # the stale entry survived...
    after = core.check(divergent_url)  # ...but its key can never match
    assert after["known"]
    assert after != before


def test_refresh_answers_match_a_fresh_core(old_snapshot, snapshot, known_url):
    refreshed = ServeCore(old_snapshot)
    refreshed.refresh(snapshot)
    fresh = ServeCore(snapshot)
    assert _canonical(refreshed.check(known_url)) == _canonical(
        fresh.check(known_url)
    )
    assert _canonical(refreshed.stats()) == _canonical(fresh.stats())


def test_concurrent_queries_never_observe_a_mixed_snapshot(
    old_snapshot, snapshot, divergent_url
):
    """Hammer one core from several threads across repeated swaps.

    Every response must be byte-equal to one of the two snapshots'
    canonical answers: a response mixing state from both generations
    (or a stale cache replay after a swap) fails the membership check.
    """
    legal_stats = {
        _canonical(ServeCore(generation, cache_size=0).stats())
        for generation in (old_snapshot, snapshot)
    }
    legal_checks = {
        _canonical(ServeCore(generation, cache_size=0).check(divergent_url))
        for generation in (old_snapshot, snapshot)
    }
    assert len(legal_stats) == 2  # the generations are distinguishable
    assert len(legal_checks) == 2

    core = ServeCore(old_snapshot)
    errors = []
    stop = threading.Event()

    def hammer():
        try:
            while not stop.is_set():
                if _canonical(core.stats()) not in legal_stats:
                    errors.append("stats response from a mixed snapshot")
                    return
                if _canonical(core.check(divergent_url)) not in legal_checks:
                    errors.append("check response from a mixed snapshot")
                    return
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(repr(exc))

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for thread in threads:
        thread.start()
    try:
        for _ in range(30):
            core.refresh(snapshot)
            core.refresh(old_snapshot)
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
    assert errors == []
    assert not any(thread.is_alive() for thread in threads)
