"""WSGI adapter: routes, status codes, byte-parity with direct core calls."""

import io
import json

import pytest

from repro.serve import canonical_json, create_app


@pytest.fixture(scope="module")
def app(core):
    return create_app(core)


def call(app, method, path, query="", body=None):
    """Invoke the app with a synthetic environ; -> (status, headers, text)."""
    environ = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "QUERY_STRING": query,
    }
    if body is not None:
        raw = body.encode("utf-8")
        environ["CONTENT_LENGTH"] = str(len(raw))
        environ["wsgi.input"] = io.BytesIO(raw)
    captured = {}

    def start_response(status, headers):
        captured["status"] = status
        captured["headers"] = dict(headers)

    chunks = app(environ, start_response)
    text = b"".join(chunks).decode("utf-8")
    return captured["status"], captured["headers"], text


class TestRoutes:
    def test_healthz(self, app, snapshot):
        status, headers, text = call(app, "GET", "/healthz")
        assert status == "200 OK"
        assert headers["Content-Type"].startswith("application/json")
        assert json.loads(text) == {"ok": True, "snapshot": snapshot.hash}

    def test_check_matches_core(self, app, core, known_url):
        from urllib.parse import urlencode

        status, _, text = call(app, "GET", "/check",
                               query=urlencode({"url": known_url}))
        assert status == "200 OK"
        assert text == canonical_json(core.check(known_url)) + "\n"

    def test_check_requires_url(self, app):
        status, _, text = call(app, "GET", "/check")
        assert status == "400 Bad Request"
        assert "url" in json.loads(text)["error"]

    def test_classify_matches_core(self, app, core):
        wpn = {"title": "hello prize", "body": "click now", "landing_url": None}
        status, _, text = call(app, "POST", "/classify", body=json.dumps(wpn))
        assert status == "200 OK"
        assert text == canonical_json(core.classify(wpn)) + "\n"

    def test_classify_rejects_bad_json(self, app):
        status, _, _ = call(app, "POST", "/classify", body="{nope")
        assert status == "400 Bad Request"

    def test_classify_rejects_non_object_body(self, app):
        status, _, _ = call(app, "POST", "/classify", body="[1,2]")
        assert status == "400 Bad Request"

    def test_campaign_matches_core(self, app, core, snapshot):
        cluster_id = int(sorted(
            snapshot.campaigns.values(), key=lambda c: c["cluster_id"]
        )[0]["cluster_id"])
        status, _, text = call(app, "GET", f"/campaign/{cluster_id}")
        assert status == "200 OK"
        assert text == canonical_json(core.campaign(cluster_id)) + "\n"

    def test_campaign_unknown_is_404(self, app):
        status, _, _ = call(app, "GET", "/campaign/999999999")
        assert status == "404 Not Found"

    def test_campaign_non_integer_is_400(self, app):
        status, _, _ = call(app, "GET", "/campaign/twelve")
        assert status == "400 Bad Request"

    def test_stats_matches_core(self, app, core):
        status, _, text = call(app, "GET", "/stats")
        assert status == "200 OK"
        assert text == canonical_json(core.stats()) + "\n"

    def test_unknown_route_is_404_with_route_list(self, app):
        status, _, text = call(app, "GET", "/nope")
        assert status == "404 Not Found"
        assert "/check" in json.loads(text)["routes"]

    @pytest.mark.parametrize("method,path", [
        ("POST", "/healthz"),
        ("POST", "/check"),
        ("GET", "/classify"),
        ("POST", "/stats"),
        ("DELETE", "/campaign/1"),
    ])
    def test_wrong_method_is_405(self, app, method, path):
        status, _, _ = call(app, method, path)
        assert status == "405 Method Not Allowed"

    def test_content_length_header_is_exact(self, app):
        _, headers, text = call(app, "GET", "/stats")
        assert int(headers["Content-Length"]) == len(text.encode("utf-8"))
