"""ResponseCache: LRU order, counters, key derivation."""

import pytest

from repro.serve import ResponseCache, response_cache_key


class TestResponseCacheKey:
    def test_method_and_query_both_matter(self):
        query = '{"url":"https://a.example/"}'
        assert response_cache_key("check", query) != response_cache_key(
            "classify", query
        )
        assert response_cache_key("check", query) != response_cache_key(
            "check", query + " "
        )

    def test_key_is_stable(self):
        assert response_cache_key("check", "{}") == response_cache_key(
            "check", "{}"
        )


class TestResponseCache:
    def test_miss_then_hit(self):
        cache = ResponseCache(maxsize=4)
        assert cache.get("k") is None
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert cache.info() == {"hits": 1, "misses": 1, "size": 1, "maxsize": 4}

    def test_lru_eviction_order(self):
        cache = ResponseCache(maxsize=2)
        cache.put("a", "1")
        cache.put("b", "2")
        assert cache.get("a") == "1"  # refreshes a; b is now LRU
        cache.put("c", "3")
        assert cache.get("b") is None
        assert cache.get("a") == "1"
        assert cache.get("c") == "3"
        assert len(cache) == 2

    def test_put_refreshes_existing_key(self):
        cache = ResponseCache(maxsize=2)
        cache.put("a", "1")
        cache.put("b", "2")
        cache.put("a", "1!")  # refresh, not insert: a becomes MRU
        cache.put("c", "3")
        assert cache.get("a") == "1!"
        assert cache.get("b") is None

    def test_clear_resets_counters(self):
        cache = ResponseCache(maxsize=2)
        cache.put("a", "1")
        cache.get("a")
        cache.get("zz")
        cache.clear()
        assert cache.info() == {"hits": 0, "misses": 0, "size": 0, "maxsize": 2}

    def test_nonpositive_maxsize_is_rejected(self):
        with pytest.raises(ValueError, match="maxsize"):
            ResponseCache(maxsize=0)
