"""Load generator: deterministic request mix, thread-count invariance."""

import pytest

from repro.obs import Tracer
from repro.serve import ServeCore, generate_requests, run_load
from repro.serve.loadgen import _percentile


class TestGenerateRequests:
    def test_same_seed_same_requests(self, snapshot):
        assert generate_requests(snapshot, 50, seed=5) == generate_requests(
            snapshot, 50, seed=5
        )

    def test_different_seed_differs(self, snapshot):
        assert generate_requests(snapshot, 50, seed=5) != generate_requests(
            snapshot, 50, seed=6
        )

    def test_covers_every_method(self, snapshot):
        methods = {m for m, _ in generate_requests(snapshot, 200, seed=1)}
        assert methods == {"check", "classify", "campaign", "stats"}

    def test_rejects_nonpositive_n(self, snapshot):
        with pytest.raises(ValueError, match="n must be"):
            generate_requests(snapshot, 0, seed=1)


class TestRunLoad:
    def test_thread_counts_share_one_checksum(self, snapshot):
        requests = generate_requests(snapshot, 40, seed=9)
        checksums = {
            workers: run_load(
                ServeCore(snapshot), requests, workers=workers
            ).response_checksum
            for workers in (1, 2, 4)
        }
        assert checksums[1] == checksums[2] == checksums[4]

    def test_cache_off_same_checksum(self, snapshot):
        # Doubling the list guarantees re-asks; with 2 round-robin workers
        # a request and its twin (i, i+20) share a thread, so the twin is
        # always a cache hit on the cached core.
        requests = generate_requests(snapshot, 20, seed=9) * 2
        cached = run_load(ServeCore(snapshot), requests, workers=2)
        uncached = run_load(
            ServeCore(snapshot, cache_size=0), requests, workers=2
        )
        assert cached.response_checksum == uncached.response_checksum
        assert cached.cache_hits > 0  # the mix re-asks, so the cache engages
        assert uncached.cache_hits == 0 and uncached.cache_misses == 0

    def test_null_clock_keeps_the_result_bytes_stable(self, snapshot):
        requests = generate_requests(snapshot, 20, seed=2)
        result = run_load(ServeCore(snapshot), requests, workers=2)
        assert result.wall_s == 0.0
        assert result.qps == 0.0
        assert result.p50_ms == 0.0 and result.p99_ms == 0.0
        again = run_load(ServeCore(snapshot), requests, workers=2)
        assert again == result

    def test_row_is_json_ready(self, snapshot):
        requests = generate_requests(snapshot, 10, seed=3)
        row = run_load(ServeCore(snapshot), requests).row()
        assert set(row) == {
            "workers", "n_requests", "wall_s", "qps", "p50_ms", "p99_ms",
            "cache_hits", "cache_misses", "cache_hit_rate",
            "response_checksum",
        }
        assert row["n_requests"] == 10

    def test_traced_core_is_rejected(self, snapshot):
        traced = ServeCore(snapshot, tracer=Tracer())
        with pytest.raises(ValueError, match="untraced"):
            run_load(traced, generate_requests(snapshot, 5, seed=1))

    def test_nonpositive_workers_rejected(self, snapshot, core):
        with pytest.raises(ValueError, match="workers"):
            run_load(core, generate_requests(snapshot, 5, seed=1), workers=0)

    def test_worker_errors_are_reraised(self, snapshot, core):
        with pytest.raises(ValueError, match="unknown request method"):
            run_load(core, [("explode", None)], workers=2)


class TestPercentile:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert _percentile(values, 0.50) == 2.0
        assert _percentile(values, 0.99) == 4.0
        assert _percentile([7.0], 0.50) == 7.0
        assert _percentile([], 0.50) == 0.0
