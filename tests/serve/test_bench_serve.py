"""repro.bench --serve: the compare gate's failure modes (unit-level).

The full sweep (crawl + mine + load-gen at several thread counts) runs in
check.sh; here the gate logic itself is pinned against synthetic reports.
"""

from repro.bench import (
    DEFAULT_SERVE_TOLERANCE,
    SERVE_SCHEMA,
    compare_serve_reports,
)


def _report(qps=(1000.0, 1500.0, 1800.0), checksum="aa" * 16, snap="bb" * 16):
    return {
        "schema": SERVE_SCHEMA,
        "scenario": {"seed": 7, "scale": 0.125, "n_requests": 240},
        "snapshot": {
            "content_hash": snap, "records": 100, "clusters": 40,
            "known_urls": 90,
        },
        "workers": [
            {
                "workers": workers, "n_requests": 240, "wall_s": 0.1,
                "qps": value, "p50_ms": 0.1, "p99_ms": 1.0,
                "cache_hits": 50, "cache_misses": 190,
                "cache_hit_rate": 50 / 240, "response_checksum": checksum,
            }
            for workers, value in zip((1, 2, 4), qps)
        ],
        "response_checksums": [checksum],
    }


def test_identical_reports_pass():
    failures, lines = compare_serve_reports(_report(), _report())
    assert failures == []
    assert len(lines) == 3


def test_qps_within_tolerance_passes():
    fresh = _report(qps=(600.0, 900.0, 1000.0))  # 40-45% down: inside 50%
    failures, _ = compare_serve_reports(
        fresh, _report(), tolerance=DEFAULT_SERVE_TOLERANCE
    )
    assert failures == []


def test_qps_regression_fails():
    fresh = _report(qps=(100.0, 1500.0, 1800.0))  # workers=1 dropped 90%
    failures, lines = compare_serve_reports(fresh, _report())
    assert len(failures) == 1
    assert "workers=1" in failures[0] and "drop" in failures[0]
    assert any("REGRESSION" in line for line in lines)


def test_snapshot_hash_drift_is_a_hard_failure():
    failures, _ = compare_serve_reports(_report(snap="cc" * 16), _report())
    assert any("snapshot content hash drifted" in f for f in failures)


def test_checksum_drift_from_baseline_is_a_hard_failure():
    failures, _ = compare_serve_reports(_report(checksum="dd" * 16), _report())
    assert any("drifted from baseline" in f for f in failures)


def test_multiple_checksums_in_one_run_fail():
    fresh = _report()
    fresh["workers"][2]["response_checksum"] = "ee" * 16
    fresh["response_checksums"] = sorted(
        {row["response_checksum"] for row in fresh["workers"]}
    )
    failures, _ = compare_serve_reports(fresh, _report())
    assert any("across thread counts" in f for f in failures)


def test_missing_worker_row_fails():
    fresh = _report()
    fresh["workers"] = fresh["workers"][:2]  # drop workers=4
    failures, _ = compare_serve_reports(fresh, _report())
    assert any("workers=4" in f and "missing" in f for f in failures)


def test_new_worker_count_is_reported_not_failed():
    baseline = _report()
    baseline["workers"] = baseline["workers"][:2]
    failures, lines = compare_serve_reports(_report(), baseline)
    assert failures == []
    assert any("no baseline" in line for line in lines)


def test_tolerance_is_respected():
    fresh = _report(qps=(800.0, 1500.0, 1800.0))  # 20% drop at workers=1
    strict, _ = compare_serve_reports(fresh, _report(), tolerance=0.10)
    loose, _ = compare_serve_reports(fresh, _report(), tolerance=0.30)
    assert strict and not loose
