"""Serve-suite fixtures: one snapshot + core built from the shared run.

The snapshot is exported once per session from the root ``small_result``
fixture (seed 8, scale 0.03), saved to disk once, and reused — exporting
is cheap, but the underlying crawl + mine is not.
"""

from __future__ import annotations

import pytest

from repro.serve import MinedSnapshot, ServeCore


@pytest.fixture(scope="session")
def snapshot(small_result):
    return MinedSnapshot.from_result(small_result)


@pytest.fixture(scope="session")
def snapshot_path(snapshot, tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "snapshot.json"
    snapshot.save(str(path))
    return str(path)


@pytest.fixture(scope="session")
def core(snapshot):
    return ServeCore(snapshot)


@pytest.fixture(scope="session")
def known_url(snapshot):
    return sorted(snapshot.urls)[0]


@pytest.fixture(scope="session")
def fixed_queries(snapshot):
    """A small, deterministic query set exercising every method."""
    urls = sorted(snapshot.urls)
    records = snapshot.records
    cluster_ids = sorted(
        int(entry["cluster_id"]) for entry in snapshot.campaigns.values()
    )
    wpns = [
        {
            "title": " ".join(row["text_tokens"][:6]),
            "body": " ".join(row["text_tokens"][6:]),
            "landing_url": row["landing_url"],
        }
        for row in records[:5]
    ]
    wpns.append(
        {
            "title": "totally novel zebra keyboard",
            "body": "unseen text far from every campaign",
            "landing_url": "https://never-crawled.example/x/y?z=1",
        }
    )
    return {
        "check": urls[:5] + ["https://never-crawled.example/landing/1"],
        "classify": wpns,
        "campaign": cluster_ids[:3],
    }


def answer_fixed_queries(core, queries):
    """Every response for the fixed query set, in a deterministic order."""
    responses = []
    responses.extend(core.check_batch(queries["check"]))
    responses.extend(core.classify_batch(queries["classify"]))
    responses.extend(core.campaign(cid) for cid in queries["campaign"])
    responses.append(core.stats())
    return responses
