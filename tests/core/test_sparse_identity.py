"""Acceptance: sparse vs dense bit-identity at scale 0.125.

The PR's headline guarantee, test-enforced at the scale the benchmarks
measure: with ``storage="sparse"`` + ``blocking="url"``, the certified
merge prefix, the selected cut threshold, the campaign labels, and the
miner summary are bit-identical to the dense path — for workers 1/2/4
and multiple tile sizes — while never materializing an O(n^2) matrix.
"""

import numpy as np
import pytest

from repro import paper_scenario, run_full_crawl
from repro.core.clustering import AgglomerativeClusterer, evaluate_cuts
from repro.core.distance import compute_distances
from repro.core.pipeline import PushAdMiner
from repro.obs import Tracer
from repro.perf import ExecutionPlan

SCALE = 0.125


@pytest.fixture(scope="module")
def dataset():
    return run_full_crawl(config=paper_scenario(seed=7, scale=SCALE))


@pytest.fixture(scope="module")
def records(dataset):
    return dataset.valid_records


@pytest.fixture(scope="module")
def dense(records):
    return compute_distances(records)


@pytest.fixture(scope="module")
def sparse(records):
    return compute_distances(records, storage="sparse", blocking="url")


@pytest.fixture(scope="module")
def dense_linkage(dense):
    return AgglomerativeClusterer().fit(dense.total)


@pytest.fixture(scope="module")
def sparse_linkage(sparse):
    return AgglomerativeClusterer().fit(sparse.total)


class TestGraphIdentityAcrossPlans:
    @pytest.mark.parametrize(
        "workers,tile_size", [(2, 512), (4, 512), (1, 96), (2, 257)]
    )
    def test_candidate_graph_bytes_are_plan_invariant(
        self, records, sparse, workers, tile_size
    ):
        got = compute_distances(
            records,
            plan=ExecutionPlan(workers=workers, tile_size=tile_size),
            storage="sparse",
            blocking="url",
        )
        assert got.total.indptr.tobytes() == sparse.total.indptr.tobytes()
        assert got.total.indices.tobytes() == sparse.total.indices.tobytes()
        assert got.total.data.tobytes() == sparse.total.data.tobytes()
        assert got.text.data.tobytes() == sparse.text.data.tobytes()
        assert got.url.data.tobytes() == sparse.url.data.tobytes()

    def test_stored_entries_equal_dense(self, dense, sparse):
        rows, cols = sparse.total.pairs()
        assert sparse.total.data.tobytes() == dense.total[rows, cols].tobytes()

    def test_sub_quadratic_footprint(self, dense, sparse):
        # The whole point: candidate-sparse bytes are a small fraction of
        # the three dense n^2 matrices.
        assert sparse.component_bytes < dense.component_bytes / 20


class TestLinkageAndCutIdentity:
    def test_certified_merge_prefix_is_dense(
        self, dense_linkage, sparse_linkage
    ):
        k = sparse_linkage.exact_merges
        assert k > 0
        assert sparse_linkage.height_floor > 0.25
        for got, want in zip(
            sparse_linkage.merges[:k], dense_linkage.merges[:k]
        ):
            assert (got.id_a, got.id_b, got.height, got.size, got.new_id) == (
                want.id_a, want.id_b, want.height, want.size, want.new_id
            )
        assert all(
            m.height >= sparse_linkage.height_floor
            for m in dense_linkage.merges[k:]
        )

    def test_cut_selection_is_dense_bit_for_bit(
        self, dense, sparse, dense_linkage, sparse_linkage
    ):
        from repro.core.clustering import evaluate_cuts_sparse

        want = evaluate_cuts(dense_linkage, dense.total)
        for plan in (None, ExecutionPlan(workers=2, tile_size=96)):
            got = evaluate_cuts_sparse(
                sparse_linkage, sparse.operands, plan=plan
            )
            assert got.threshold == want.threshold
            assert got.score == want.score
            assert got.n_candidates == want.n_candidates
            np.testing.assert_array_equal(got.labels, want.labels)


class TestMinerIdentity:
    @pytest.fixture(scope="class")
    def dense_result(self, dataset, records):
        return PushAdMiner.for_dataset(dataset).run(records)

    @pytest.fixture(scope="class")
    def sparse_run(self, dataset, records):
        tracer = Tracer()
        result = PushAdMiner.for_dataset(
            dataset, tracer=tracer, storage="sparse", blocking="url"
        ).run(records)
        return result, tracer.finish()

    def test_summary_and_labels_match_dense(self, dense_result, sparse_run):
        sparse_result, _ = sparse_run
        assert sparse_result.cut_threshold == dense_result.cut_threshold
        assert sparse_result.silhouette == dense_result.silhouette
        np.testing.assert_array_equal(
            sparse_result.labels, dense_result.labels
        )
        assert sparse_result.summary() == dense_result.summary()
        assert sparse_result.stage_rows() == dense_result.stage_rows()

    def test_blocking_span_and_gauges(self, sparse_run):
        result, root = sparse_run
        blocking = root.find("pipeline.blocking")
        assert blocking is not None
        stats = result.distances.blocking_stats
        assert blocking.metrics["candidate_pairs"] == stats.n_candidate_pairs
        assert blocking.metrics["stored_pairs"] == stats.n_stored_pairs
        assert blocking.metrics["pruning_ratio"] == stats.pruning_ratio
        assert blocking.metrics["components"] == stats.n_components
        assert blocking.metrics["max_component"] == stats.max_component
        linkage_span = root.find("pipeline.linkage")
        assert linkage_span.metrics["exact_merges"] > 0
        # The sparse fit's work bytes are bounded by the largest
        # component, not n^2.
        n = result.distances.size
        assert linkage_span.metrics["work_bytes"] < n * n * 8
