"""Tests for the brand-spoofing analysis."""

import pytest

from repro.core.brandspoof import (
    KNOWN_BRANDS,
    analyze_brand_spoofing,
    icon_brand_of,
    is_brand_spoof,
)
from tests.core.test_records_features import make_record


def spoof_record(brand="whatsapp", source="https://www.shady-site.xyz/", **kw):
    return make_record(
        icon_url=f"https://www.shady-site.xyz/icons/{brand}.png",
        source_url=source,
        **kw,
    )


class TestIconBrand:
    def test_brand_extracted(self):
        assert icon_brand_of(spoof_record("whatsapp")) == "whatsapp"

    def test_generic_icon_is_none(self):
        record = make_record(icon_url="https://x.com/icons/push-survey_scam.png")
        assert icon_brand_of(record) is None

    def test_unknown_path_is_none(self):
        record = make_record(icon_url="https://x.com/favicon.ico")
        assert icon_brand_of(record) is None


class TestSpoofRule:
    def test_brand_icon_from_unrelated_origin_is_spoof(self):
        assert is_brand_spoof(spoof_record("paypal"))

    def test_brand_icon_from_own_domain_is_legit(self):
        record = make_record(
            icon_url="https://www.paypal.com/icons/paypal.png",
            source_url="https://www.paypal.com/",
        )
        assert not is_brand_spoof(record)

    def test_generic_icon_never_spoof(self):
        assert not is_brand_spoof(make_record())


class TestAnalyze:
    def test_aggregates(self):
        records = [
            spoof_record("whatsapp", wpn_id="w1", platform="mobile"),
            spoof_record("fedex", wpn_id="w2", platform="mobile"),
            spoof_record("whatsapp", wpn_id="w3", platform="desktop"),
            make_record(wpn_id="w4"),
        ]
        report = analyze_brand_spoofing(records)
        assert report.total_wpns == 4
        assert report.spoofing_wpns == 3
        assert report.by_brand == {"whatsapp": 2, "fedex": 1}
        assert report.by_platform == {"mobile": 2, "desktop": 1}
        assert report.top_brands(1) == [("whatsapp", 2)]
        assert report.spoof_rate == pytest.approx(0.75)
        assert report.malicious_spoofs == 3  # make_record default truth

    def test_empty(self):
        report = analyze_brand_spoofing([])
        assert report.spoof_rate == 0.0
        assert report.spoof_precision_for_malice == 0.0

    def test_real_crawl_spoofing_is_malicious(self, small_dataset):
        report = analyze_brand_spoofing(small_dataset.records)
        assert report.spoofing_wpns > 0
        # Spoofed icons are a strong malice signal in the wild and in sim.
        assert report.spoof_precision_for_malice > 0.9

    def test_im_spoofs_are_mobile_only(self, small_dataset):
        # The paper's spoofed Gmail/WhatsApp notifications target mobile;
        # fake-PayPal/bank spoofs appear on both platforms.
        from repro.core.brandspoof import icon_brand_of

        for record in small_dataset.records:
            if icon_brand_of(record) in ("whatsapp", "gmail"):
                assert record.platform == "mobile"

    def test_all_known_brands_have_legit_domains(self):
        for brand, domains in KNOWN_BRANDS.items():
            assert domains, brand
