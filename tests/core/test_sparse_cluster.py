"""Certified sparse-graph linkage and cut selection.

The sparse path's promise is all-or-nothing: either it reproduces the
dense merge prefix / cut bit for bit, or it raises
:class:`~repro.perf.BlockingExactnessError` — never a silent
approximation.  These tests pin both sides: the exactness certificate
against the dense oracle on a real corpus, and every refusal path on
hand-built linkages where the certificate provably cannot hold.
"""

import numpy as np
import pytest

from repro.core.clustering import (
    AgglomerativeClusterer,
    Linkage,
    Merge,
    evaluate_cuts,
    evaluate_cuts_sparse,
)
from repro.core.distance import compute_distances
from repro.core.silhouette import average_silhouette
from repro.perf import BlockingExactnessError, ExecutionPlan


@pytest.fixture(scope="module")
def corpus(small_dataset):
    return small_dataset.valid_records[:160]


@pytest.fixture(scope="module")
def dense(corpus):
    return compute_distances(corpus)


@pytest.fixture(scope="module")
def sparse(corpus):
    return compute_distances(corpus, storage="sparse", blocking="url")


@pytest.fixture(scope="module")
def dense_linkage(dense):
    return AgglomerativeClusterer().fit(dense.total)


@pytest.fixture(scope="module")
def sparse_linkage(sparse):
    return AgglomerativeClusterer().fit(sparse.total)


def merge_tuple(merge):
    return (merge.id_a, merge.id_b, merge.height, merge.size, merge.new_id)


class TestSparseFitCertificate:
    def test_certified_prefix_is_bitwise_dense(
        self, dense_linkage, sparse_linkage
    ):
        k = sparse_linkage.exact_merges
        assert k > 0
        for got, want in zip(
            sparse_linkage.merges[:k], dense_linkage.merges[:k]
        ):
            assert merge_tuple(got) == merge_tuple(want)

    def test_floor_separates_prefix_from_dense_tail(
        self, dense_linkage, sparse_linkage
    ):
        floor = sparse_linkage.height_floor
        k = sparse_linkage.exact_merges
        # The floor must sit above every certified height and at-or-below
        # every dense tail height: that is the sandwich the cut stage
        # certifies thresholds against.
        assert all(m.height < floor for m in sparse_linkage.merges[:k])
        assert all(m.height >= floor for m in dense_linkage.merges[k:])
        assert floor > 0.25  # cut thresholds (<= 0.25) stay certifiable

    def test_cut_labels_match_dense_below_floor(
        self, dense_linkage, sparse_linkage
    ):
        for threshold in (0.05, 0.1, 0.2, 0.25):
            np.testing.assert_array_equal(
                sparse_linkage.cut(threshold), dense_linkage.cut(threshold)
            )

    def test_dense_linkage_is_fully_exact(self, dense_linkage):
        assert dense_linkage.exact_merges == len(dense_linkage.merges)
        assert dense_linkage.height_floor == float("inf")


class TestEvaluateCutsSparse:
    def test_default_selection_matches_dense(
        self, dense, sparse, dense_linkage, sparse_linkage
    ):
        want = evaluate_cuts(dense_linkage, dense.total)
        got = evaluate_cuts_sparse(sparse_linkage, sparse.operands)
        assert got.threshold == want.threshold
        assert got.score == want.score
        assert got.n_candidates == want.n_candidates
        np.testing.assert_array_equal(got.labels, want.labels)

    def test_parallel_plan_is_invisible(self, sparse, sparse_linkage):
        serial = evaluate_cuts_sparse(sparse_linkage, sparse.operands)
        parallel = evaluate_cuts_sparse(
            sparse_linkage,
            sparse.operands,
            plan=ExecutionPlan(workers=2, tile_size=48),
        )
        assert parallel.threshold == serial.threshold
        assert parallel.score == serial.score
        np.testing.assert_array_equal(parallel.labels, serial.labels)

    def test_fixed_threshold_matches_dense_average_silhouette(
        self, dense, sparse, dense_linkage, sparse_linkage
    ):
        selection = evaluate_cuts_sparse(
            sparse_linkage, sparse.operands, candidates=[0.1]
        )
        labels = dense_linkage.cut(0.1)
        np.testing.assert_array_equal(selection.labels, labels)
        assert selection.score == average_silhouette(dense.total, labels)
        assert selection.n_candidates == 1

    def test_fully_exact_linkage_needs_no_certificate(
        self, dense, sparse, dense_linkage
    ):
        # A dense (fully exact) linkage goes through the sparse scorer
        # without any certification and must reproduce the dense sweep.
        want = evaluate_cuts(dense_linkage, dense.total)
        got = evaluate_cuts_sparse(dense_linkage, sparse.operands)
        assert got.threshold == want.threshold
        assert got.score == want.score
        np.testing.assert_array_equal(got.labels, want.labels)

    def test_uncertified_fixed_threshold_raises(
        self, sparse, sparse_linkage
    ):
        floor = sparse_linkage.height_floor
        with pytest.raises(BlockingExactnessError, match="undercut"):
            evaluate_cuts_sparse(
                sparse_linkage, sparse.operands, candidates=[floor]
            )


def synthetic_linkage(heights, exact_merges, floor):
    """A chain linkage with the given merge heights (leaves 0..n)."""
    n = len(heights) + 1
    merges = []
    previous = 0
    for i, height in enumerate(heights):
        merges.append(
            Merge(
                id_a=previous,
                id_b=i + 1,
                height=float(height),
                size=i + 2,
                new_id=n + i,
            )
        )
        previous = n + i
    return Linkage(n, merges, exact_merges=exact_merges, height_floor=floor)


class TestCertificationRefusals:
    """Every refusal path, on linkages where exactness provably fails."""

    def test_non_positive_floor_refuses(self, sparse):
        linkage = synthetic_linkage([0.1, 1.0, 1.0], 1, 1e-13)
        with pytest.raises(BlockingExactnessError, match="not positive"):
            evaluate_cuts_sparse(linkage, sparse.operands)

    def test_uncertified_quantiles_refuse(self, sparse):
        # Floor 0.2: the dense tail may live anywhere in [0.2, 1.0], so
        # quantiles at or below max_threshold=0.25 depend on it.
        linkage = synthetic_linkage(
            [0.05, 0.1, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0], 2, 0.2
        )
        with pytest.raises(BlockingExactnessError, match="uncertified"):
            evaluate_cuts_sparse(linkage, sparse.operands)

    def test_fallback_with_no_exact_merges_refuses(self, sparse):
        # Every candidate lands above max_threshold, so the default path
        # falls back to min(heights[0], max_threshold) — but with zero
        # certified merges even heights[0] is a placeholder.
        linkage = synthetic_linkage([1.0, 1.0, 1.0], 0, 0.4)
        with pytest.raises(BlockingExactnessError, match="first merge"):
            evaluate_cuts_sparse(linkage, sparse.operands)

    def test_explicit_threshold_at_or_above_floor_refuses(self, sparse):
        linkage = synthetic_linkage([0.1, 1.0, 1.0], 1, 0.3)
        for threshold in (0.3, 0.35):
            with pytest.raises(BlockingExactnessError, match="undercut"):
                evaluate_cuts_sparse(
                    linkage, sparse.operands, candidates=[threshold]
                )
