"""Tests for WPN records and feature extraction."""

import pytest

from repro.core.features import extract_all, extract_features
from repro.core.records import WpnRecord, WpnTruth


def make_record(**overrides):
    defaults = dict(
        wpn_id="wpn0000001",
        platform="desktop",
        source_url="https://www.pub.example.com/",
        network_name="Ad-Maven",
        sw_script_url="https://www.pub.example.com/sw/admaven-push-sw.js",
        title="You have been selected!",
        body="Claim your $500 voucher now.",
        icon_url="https://www.pub.example.com/icons/x.png",
        sent_at_min=1.0,
        shown_at_min=2.0,
        clicked_at_min=2.1,
        valid=True,
        landing_url="https://win-prize.xyz/of12a/survey/start.php?sid=9&src=push",
        redirect_hops=("https://click.admaven.com/c/redirect?nid=1",
                       "https://win-prize.xyz/of12a/survey/start.php?sid=9&src=push"),
        visual_hash="abc123",
        landing_ip="185.1.2.3",
        landing_registrant="reg@privacyguard.example",
        truth=WpnTruth(
            kind="ad", family_name="survey_scam", category="survey scam",
            campaign_id="cmp00001", operation_id="op0001",
            malicious=True, is_one_off=False,
        ),
    )
    defaults.update(overrides)
    return WpnRecord(**defaults)


class TestWpnRecord:
    def test_valid_requires_landing(self):
        with pytest.raises(ValueError):
            make_record(landing_url=None)

    def test_platform_validated(self):
        with pytest.raises(ValueError):
            make_record(platform="tv")

    def test_derived_domains(self):
        record = make_record()
        assert record.source_domain == "www.pub.example.com"
        assert record.source_etld1 == "example.com"
        assert record.landing_domain == "win-prize.xyz"
        assert record.landing_etld1 == "win-prize.xyz"

    def test_text_concatenation(self):
        record = make_record()
        assert record.text == f"{record.title} {record.body}"

    def test_invalid_record_has_no_landing(self):
        record = make_record(valid=False, landing_url=None, redirect_hops=(),
                             visual_hash=None, landing_ip=None,
                             landing_registrant=None)
        assert record.landing is None
        assert record.landing_etld1 is None

    def test_delivery_latency(self):
        assert make_record().delivery_latency_min == 1.0


class TestFeatures:
    def test_text_tokens(self):
        features = extract_features(make_record())
        assert "selected" in features.text_tokens
        assert "voucher" in features.text_tokens

    def test_url_tokens_exclude_domain_and_values(self):
        features = extract_features(make_record())
        assert "win-prize" not in features.url_tokens
        assert "xyz" not in features.url_tokens
        assert "sid" in features.url_tokens
        assert "survey" in features.url_tokens
        assert "9" not in features.url_tokens
        assert features.has_url_tokens

    def test_invalid_record_rejected(self):
        record = make_record(valid=False, landing_url=None, redirect_hops=(),
                             visual_hash=None, landing_ip=None,
                             landing_registrant=None)
        with pytest.raises(ValueError):
            extract_features(record)

    def test_extract_all_preserves_order(self):
        a = make_record()
        b = make_record(wpn_id="wpn0000002", title="other title")
        features = extract_all([a, b])
        assert len(features) == 2
        assert "other" in features[1].text_tokens


class TestPageSignals:
    def test_page_signals_default_empty(self):
        assert make_record().page_signals == ()

    def test_crawled_records_carry_signals(self, small_dataset):
        valid = small_dataset.valid_records
        with_signals = [r for r in valid if r.page_signals]
        # The 0.85 per-element render rate leaves almost every page with
        # at least one recorded element.
        assert len(with_signals) > 0.7 * len(valid)

    def test_invalid_records_have_no_signals(self, small_dataset):
        for record in small_dataset.records:
            if not record.valid:
                assert record.page_signals == ()

    def test_tech_support_pages_show_phone_numbers(self, small_dataset):
        pages = [
            r for r in small_dataset.valid_records
            if r.truth.family_name == "tech_support"
        ]
        if pages:
            with_phone = sum(
                1 for r in pages if "support-phone-number" in r.page_signals
            )
            assert with_phone / len(pages) > 0.5
