"""Tests for the embedding backends (PPMI-SVD and SGNS)."""

import numpy as np
import pytest

from repro.core.embeddings import (
    PpmiSvdEmbeddings,
    SgnsEmbeddings,
    build_vocabulary,
)
from repro.core.textsim import SoftCosineModel

CORPUS = [
    ["win", "prize", "claim", "now"],
    ["win", "prize", "claim", "today"],
    ["claim", "your", "prize"],
    ["weather", "alert", "storm"],
    ["storm", "alert", "warning"],
    ["install", "app", "premium"],
    ["install", "app", "free"],
] * 4  # repeat for a denser co-occurrence signal


class TestVocabulary:
    def test_sorted_and_complete(self):
        vocab = build_vocabulary([["b", "a"], ["c", "a"]])
        assert list(vocab) == ["a", "b", "c"]
        assert vocab["a"] == 0

    def test_min_count(self):
        vocab = build_vocabulary([["a", "a", "b"]], min_count=2)
        assert "b" not in vocab and "a" in vocab


class TestPpmiSvd:
    def test_shapes_and_norms(self):
        vocab, emb = PpmiSvdEmbeddings(dimensions=8).fit(CORPUS)
        assert emb.shape[0] == len(vocab)
        norms = np.linalg.norm(emb, axis=1)
        assert np.allclose(norms[norms > 0], 1.0)

    def test_empty(self):
        vocab, emb = PpmiSvdEmbeddings().fit([])
        assert vocab == {} and emb.shape[0] == 0

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            PpmiSvdEmbeddings(dimensions=1)


class TestSgns:
    def test_shapes_and_norms(self):
        vocab, emb = SgnsEmbeddings(dimensions=8, epochs=2, seed=1).fit(CORPUS)
        assert emb.shape == (len(vocab), 8)
        assert np.allclose(np.linalg.norm(emb, axis=1), 1.0)

    def test_deterministic(self):
        a = SgnsEmbeddings(dimensions=8, seed=5).fit(CORPUS)[1]
        b = SgnsEmbeddings(dimensions=8, seed=5).fit(CORPUS)[1]
        assert np.allclose(a, b)

    def test_seed_changes_embeddings(self):
        a = SgnsEmbeddings(dimensions=8, seed=1).fit(CORPUS)[1]
        b = SgnsEmbeddings(dimensions=8, seed=2).fit(CORPUS)[1]
        assert not np.allclose(a, b)

    def test_cooccurring_words_closer_than_unrelated(self):
        vocab, emb = SgnsEmbeddings(dimensions=8, epochs=5, seed=3).fit(CORPUS)
        win, prize, storm = emb[vocab["win"]], emb[vocab["prize"]], emb[vocab["storm"]]
        assert win @ prize > win @ storm

    def test_empty(self):
        vocab, emb = SgnsEmbeddings().fit([])
        assert vocab == {} and emb.shape[0] == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SgnsEmbeddings(negatives=0)
        with pytest.raises(ValueError):
            SgnsEmbeddings(epochs=0)


class TestBackendSelection:
    def test_sgns_backend_in_soft_cosine(self):
        model = SoftCosineModel(dimensions=8, backend="sgns").fit(CORPUS)
        sim = model.similarity_matrix(CORPUS)
        assert sim.shape == (len(CORPUS), len(CORPUS))
        assert sim[0, 1] > sim[0, 3]  # prize messages closer than weather

    def test_custom_backend_object(self):
        model = SoftCosineModel(
            dimensions=8, backend=SgnsEmbeddings(dimensions=8, seed=9)
        ).fit(CORPUS)
        assert model.embeddings.shape[1] == 8

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            SoftCosineModel(backend="glove")

    def test_backends_agree_on_identical_docs(self):
        for backend in ("ppmi-svd", "sgns"):
            model = SoftCosineModel(dimensions=8, backend=backend).fit(CORPUS)
            sim = model.similarity_matrix(CORPUS)
            assert sim[0, 7] == pytest.approx(1.0, abs=1e-9)  # same doc repeated
