"""Tests for suspicious-ad discovery and the manual-verification oracle."""

import pytest

from repro.core.campaigns import WpnCluster
from repro.core.labeling import LabelingResult
from repro.core.metacluster import build_meta_clusters
from repro.core.records import WpnTruth
from repro.core.suspicious import cluster_has_duplicate_ads, find_suspicious
from repro.core.verification import ManualVerificationOracle
from tests.core.test_records_features import make_record
from tests.core.test_labeling_metacluster import benign_record, mal_record


def campaign_cluster(cluster_id, landing_domains, n_sources=2, prefix="w"):
    records = []
    for i, domain in enumerate(landing_domains * n_sources):
        records.append(
            mal_record(f"{prefix}{cluster_id}_{i}", f"s{i % n_sources}.com", domain)
        )
    return WpnCluster(cluster_id, records)


class TestDuplicateAds:
    def test_multi_domain_campaign_flagged(self):
        cluster = campaign_cluster(0, ["a.xyz", "b.club"])
        assert cluster_has_duplicate_ads(cluster)

    def test_single_domain_campaign_not_flagged(self):
        cluster = campaign_cluster(0, ["a.xyz"])
        assert not cluster_has_duplicate_ads(cluster)

    def test_non_campaign_never_flagged(self):
        cluster = WpnCluster(0, [
            mal_record("w1", "same.com", "a.xyz"),
            mal_record("w2", "same.com", "b.club"),
        ])
        assert not cluster_has_duplicate_ads(cluster)


class TestFindSuspicious:
    def test_ad_propagation_through_meta(self):
        campaign = campaign_cluster(0, ["shared.xyz"])
        one_off = WpnCluster(1, [mal_record("solo", "z.com", "shared.xyz")])
        metas = build_meta_clusters([campaign, one_off])
        labeling = LabelingResult()
        oracle = ManualVerificationOracle(unconfirmable_rate=0.0)
        result = find_suspicious(metas, labeling, oracle)
        assert "solo" in result.additional_ad_ids
        assert result.ad_related_meta_ids

    def test_known_malicious_taints_component(self):
        campaign = campaign_cluster(0, ["shared.xyz"])
        sibling = WpnCluster(1, [mal_record("sib", "z.com", "shared.xyz")])
        metas = build_meta_clusters([campaign, sibling])
        labeling = LabelingResult(
            known_malicious_ids={campaign.records[0].wpn_id},
            malicious_cluster_ids={0},
        )
        oracle = ManualVerificationOracle(unconfirmable_rate=0.0)
        result = find_suspicious(metas, labeling, oracle)
        assert metas[0].meta_id in result.suspicious_meta_ids
        assert "sib" in result.suspicious_wpn_ids
        assert "sib" in result.confirmed_malicious_ids

    def test_duplicate_ads_alone_makes_suspicious(self):
        campaign = campaign_cluster(0, ["a.xyz", "b.club"])
        metas = build_meta_clusters([campaign])
        result = find_suspicious(metas, LabelingResult(),
                                 ManualVerificationOracle(unconfirmable_rate=0.0))
        assert result.suspicious_meta_ids
        assert campaign.cluster_id in result.duplicate_ad_campaign_cluster_ids

    def test_benign_duplicate_ads_not_confirmed(self):
        # Job boards rotate domains but aren't malicious; the analyst
        # declines to confirm them.
        records = [benign_record("j1", "a.com", "jobs-a.com"),
                   benign_record("j2", "b.com", "jobs-b.com")]
        cluster = WpnCluster(0, records)
        metas = build_meta_clusters([cluster])
        result = find_suspicious(metas, LabelingResult(),
                                 ManualVerificationOracle(unconfirmable_rate=0.0))
        assert result.suspicious_wpn_ids == {"j1", "j2"}
        assert result.confirmed_malicious_ids == set()
        assert result.unconfirmed_ids == {"j1", "j2"}

    def test_clean_single_domain_component_untouched(self):
        cluster = campaign_cluster(0, ["only.xyz"])
        metas = build_meta_clusters([cluster])
        result = find_suspicious(metas, LabelingResult(),
                                 ManualVerificationOracle(unconfirmable_rate=0.0))
        assert not result.suspicious_meta_ids
        assert not result.suspicious_wpn_ids

    def test_already_labeled_not_relabeled(self):
        campaign = campaign_cluster(0, ["a.xyz", "b.club"])
        known = campaign.records[0].wpn_id
        labeling = LabelingResult(
            known_malicious_ids={known},
            malicious_cluster_ids={0},
            propagated_confirmed_ids={r.wpn_id for r in campaign.records[1:]},
        )
        metas = build_meta_clusters([campaign])
        result = find_suspicious(metas, labeling,
                                 ManualVerificationOracle(unconfirmable_rate=0.0))
        assert not result.suspicious_wpn_ids


class TestOracle:
    def test_benign_never_confirmed(self):
        oracle = ManualVerificationOracle(unconfirmable_rate=0.0)
        assert not oracle.confirm_malicious(benign_record("b1", "a.com", "x.com"))

    def test_malicious_confirmed(self):
        oracle = ManualVerificationOracle(unconfirmable_rate=0.0)
        assert oracle.confirm_malicious(mal_record("m1", "a.com", "evil.xyz"))

    def test_unconfirmable_slice(self):
        # Malicious pages with *neutral* text and no known artifacts can be
        # inconclusive at inspection time (the paper's welcome-page cases);
        # anything matching a factor is always confirmable.
        strict = ManualVerificationOracle(seed=5, unconfirmable_rate=0.5)
        records = [
            make_record(
                wpn_id=f"m{i}",
                title="Thanks for subscribing",
                body=f"Stay tuned for updates picked for you, reader {i}.",
                landing_url=f"https://evil{i}.xyz/subscribe/welcome.html?ref=1",
                visual_hash=f"vh{i}",
                landing_ip=f"10.0.{i}.1",
                landing_registrant=f"owner{i}@registrar.example",
            )
            for i in range(60)
        ]
        confirmed, unconfirmed = strict.confirm_many(records)
        assert unconfirmed  # some genuinely inconclusive pages
        assert confirmed

    def test_factors_accumulate_knowledge(self):
        oracle = ManualVerificationOracle(unconfirmable_rate=0.0)
        first = mal_record("m1", "a.com", "evil.xyz")
        oracle.confirm_malicious(first)
        lookalike = mal_record("m2", "b.com", "evil2.club")
        factors = oracle.matched_factors(lookalike)
        # same campaign visual hash + same message text + shared registrant
        assert "visually-similar-landing" in factors
        assert "same-message-different-landing" in factors
        assert "shared-infrastructure" in factors

    def test_scam_keywords_factor(self):
        oracle = ManualVerificationOracle()
        record = mal_record("m1", "a.com", "evil.xyz")
        assert "likely-malicious-content" in oracle.matched_factors(record)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            ManualVerificationOracle(unconfirmable_rate=2.0)

    def test_inspection_counter(self):
        oracle = ManualVerificationOracle()
        oracle.confirm_many([mal_record("m1", "a.com", "e.xyz"),
                             benign_record("b1", "a.com", "x.com")])
        assert oracle.inspections == 2
