"""Blocked / parallel / condensed / float32 distance paths on a real corpus.

The acceptance property of the perf subsystem: every execution
configuration yields the same science. Worker count and tile size must
never change a single bit of the distance matrices or the downstream cut
selection; reduced precision/storage modes must stay within float32
tolerance while shrinking the footprint.
"""

import numpy as np
import pytest

from repro.core.clustering import AgglomerativeClusterer, evaluate_cuts
from repro.core.distance import compute_distances
from repro.core.pipeline import MinerConfig
from repro.perf import ExecutionPlan, condensed_size, square_to_condensed


@pytest.fixture(scope="module")
def corpus(small_dataset):
    # Keep it moderate so the ProcessPool cases stay fast.
    return small_dataset.valid_records[:160]


@pytest.fixture(scope="module")
def reference(corpus):
    return compute_distances(corpus)


class TestBlockedAndParallelIdentity:
    def test_tile_size_is_invisible(self, corpus, reference):
        for tile_size in (7, 50, 1000):
            got = compute_distances(
                corpus, plan=ExecutionPlan(tile_size=tile_size)
            )
            assert got.total.tobytes() == reference.total.tobytes()
            assert got.text.tobytes() == reference.text.tobytes()
            assert got.url.tobytes() == reference.url.tobytes()

    def test_workers_1_2_4_bit_identical_distances_and_cut(
        self, corpus, reference
    ):
        selections = []
        for workers in (1, 2, 4):
            got = compute_distances(
                corpus, plan=ExecutionPlan(workers=workers, tile_size=48)
            )
            assert got.total.tobytes() == reference.total.tobytes()
            assert got.text.tobytes() == reference.text.tobytes()
            assert got.url.tobytes() == reference.url.tobytes()
            linkage = AgglomerativeClusterer().fit(got.total)
            selections.append(evaluate_cuts(linkage, got.total_square()))
        first = selections[0]
        for other in selections[1:]:
            assert other.threshold == first.threshold
            assert other.score == first.score
            np.testing.assert_array_equal(other.labels, first.labels)

    def test_matrices_are_symmetric_without_symmetrization(self, reference):
        for matrix in (reference.text, reference.url, reference.total):
            assert matrix.tobytes() == np.ascontiguousarray(matrix.T).tobytes()


class TestReducedModes:
    def test_condensed_equals_dense_upper_triangle(self, corpus, reference):
        got = compute_distances(corpus, storage="condensed")
        assert got.storage == "condensed"
        assert got.text is None and got.url is None
        expected = square_to_condensed(reference.total)
        assert got.total.tobytes() == expected.tobytes()
        square = got.total_square()
        assert square.tobytes() == reference.total.tobytes()

    def test_float32_close_and_half_the_bytes(self, corpus, reference):
        got = compute_distances(corpus, precision="float32")
        assert got.total.dtype == np.float32
        np.testing.assert_allclose(got.total, reference.total, atol=1e-6)
        assert got.component_bytes * 2 == reference.component_bytes

    def test_condensed_float32_footprint(self, corpus, reference):
        got = compute_distances(
            corpus, precision="float32", storage="condensed"
        )
        n = got.size
        assert got.component_bytes == condensed_size(n) * 4
        # >= 2x below even ONE dense float64 square, let alone all three.
        assert got.component_bytes * 2 < n * n * 8
        np.testing.assert_allclose(
            got.total_square(dtype=np.float64),
            reference.total,
            atol=1e-6,
        )

    def test_condensed_linkage_matches_dense(self, corpus, reference):
        got = compute_distances(corpus, storage="condensed")
        dense_linkage = AgglomerativeClusterer().fit(reference.total)
        condensed_linkage = AgglomerativeClusterer().fit(got.total)
        assert np.array_equal(
            dense_linkage.to_scipy(), condensed_linkage.to_scipy()
        )

    def test_invalid_modes_raise(self, corpus):
        with pytest.raises(ValueError):
            compute_distances(corpus, precision="float16")
        with pytest.raises(ValueError):
            compute_distances(corpus, storage="sparse")


class TestMinerConfigKnobs:
    def test_defaults(self):
        cfg = MinerConfig()
        assert cfg.workers == 1
        assert cfg.precision == "float64"
        assert cfg.storage == "dense"
        assert cfg.tile_size >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            MinerConfig(workers=0)
        with pytest.raises(ValueError):
            MinerConfig(tile_size=0)
        with pytest.raises(ValueError):
            MinerConfig(precision="float16")
        with pytest.raises(ValueError):
            MinerConfig(storage="sparse")  # requires blocking="url"
        with pytest.raises(ValueError):
            MinerConfig(blocking="url")  # requires storage="sparse"
        with pytest.raises(ValueError):
            MinerConfig(blocking="lsh")
        for bad_bound in (0.0, -0.1, 0.51):
            with pytest.raises(ValueError):
                MinerConfig(
                    storage="sparse", blocking="url", blocking_bound=bad_bound
                )

    def test_sparse_knobs(self):
        from repro.perf import DEFAULT_SPARSE_BOUND

        cfg = MinerConfig(storage="sparse", blocking="url")
        assert cfg.blocking_bound == DEFAULT_SPARSE_BOUND
        tightened = cfg.replace(blocking_bound=0.5)
        assert tightened.blocking_bound == 0.5
