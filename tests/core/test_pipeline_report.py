"""Tests for the end-to-end pipeline and the report builders."""

import pytest

from repro.core import report
from repro.core.pipeline import PushAdMiner


class TestPipeline:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PushAdMiner().run([])

    def test_invalid_records_dropped(self, small_dataset, small_result):
        assert len(small_result.records) == len(small_dataset.valid_records)

    def test_every_record_in_exactly_one_cluster(self, small_result):
        counted = sum(len(c) for c in small_result.clusters)
        assert counted == len(small_result.records)
        ids = [r.wpn_id for c in small_result.clusters for r in c.records]
        assert len(ids) == len(set(ids))

    def test_every_cluster_in_exactly_one_meta(self, small_result):
        cluster_ids = [cid for m in small_result.metas for cid in m.cluster_ids]
        assert sorted(cluster_ids) == sorted(
            c.cluster_id for c in small_result.clusters
        )

    def test_campaign_ids_are_multi_source(self, small_result):
        by_id = {c.cluster_id: c for c in small_result.clusters}
        for cid in small_result.campaign_cluster_ids:
            assert len(by_id[cid].source_etld1s) > 1

    def test_ad_sets_nested(self, small_result):
        assert small_result.campaign_ad_ids <= small_result.all_ad_ids
        assert small_result.malicious_ad_ids <= small_result.all_ad_ids

    def test_stage_rows_consistent(self, small_result):
        row1, row2, total = small_result.stage_rows()
        assert total.n_wpn_ads == row1.n_wpn_ads + row2.n_wpn_ads
        assert total.n_wpn_ads == len(small_result.all_ad_ids)
        assert row1.n_ad_related == len(small_result.campaign_cluster_ids)
        assert row2.n_clusters == len(small_result.metas)

    def test_summary_fields(self, small_result):
        summary = small_result.summary()
        assert summary["wpn_ads"] >= summary["malicious_ads"]
        assert 0 <= summary["malicious_ad_pct"] <= 100
        assert summary["singleton_clusters"] <= summary["wpn_clusters"]

    def test_labeling_quality_against_truth(self, small_result):
        # The confirmed-malicious set should be dominated by truly
        # malicious records (the oracle curbs blocklist false positives).
        truth = {r.wpn_id: r.truth.malicious for r in small_result.records}
        confirmed = (
            small_result.labeling.confirmed_malicious_ids
            | small_result.suspicion.confirmed_malicious_ids
        )
        if confirmed:
            precision = sum(truth[i] for i in confirmed) / len(confirmed)
            assert precision > 0.95

    def test_malicious_recall_reasonable(self, small_result):
        truly = {r.wpn_id for r in small_result.records if r.truth.malicious}
        found = small_result.malicious_ad_ids
        assert len(found & truly) / len(truly) > 0.5

    def test_cut_is_conservative(self, small_result):
        assert small_result.cut_threshold < 0.5
        assert len(small_result.clusters) >= 0.33 * len(small_result.records)

    def test_for_dataset_uses_scenario_rates(self, small_dataset):
        miner = PushAdMiner.for_dataset(small_dataset)
        assert miner.vt_late_rate == small_dataset.config.vt_late_rate
        assert miner.gsb_rate == small_dataset.config.gsb_rate

    def test_fixed_threshold_override(self, small_dataset):
        miner = PushAdMiner.for_dataset(small_dataset, cut_threshold=0.01)
        result = miner.run(small_dataset.valid_records[:200])
        assert result.cut_threshold == 0.01


class TestReport:
    def test_render_table(self):
        text = report.render_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "---" in lines[1]

    def test_table1(self, small_dataset):
        rows = report.table1_rows(small_dataset.discovery)
        assert rows[-1][0] == "Total"
        assert rows[-1][1] == sum(r[1] for r in rows[:-1])

    def test_table2(self, small_dataset):
        rows = report.table2_rows(small_dataset)
        total = sum(count for _, count in rows)
        assert total == small_dataset.npr_domain_count()

    def test_table3(self, small_dataset, small_result):
        summary = report.table3_summary(small_dataset, small_result)
        assert summary["valid_wpns"] == len(small_dataset.valid_records)
        assert summary["malicious_ads"] <= summary["wpn_ads"]

    def test_table4(self, small_result):
        rows = report.table4_rows(small_result)
        assert len(rows) == 3
        assert rows[2][0] == "Total"

    def test_table5(self, small_result):
        rows = report.table5_singletons(small_result, sample=5)
        assert len(rows) <= 5
        for title, domain, verdict in rows:
            assert verdict in ("simple alert", "spurious suspicious ad")

    def test_fig4_examples(self, small_result):
        examples = report.fig4_cluster_examples(small_result)
        labels = [e.label for e in examples]
        assert "WPN-C1" in labels and "WPN-C4" in labels
        c1 = next(e for e in examples if e.label == "WPN-C1")
        assert len(c1.cluster.source_etld1s) > 1
        c4 = next(e for e in examples if e.label == "WPN-C4")
        assert c4.cluster.is_singleton

    def test_fig5_graphs_bipartite(self, small_result):
        graphs = report.fig5_meta_graphs(small_result, top=2)
        assert graphs
        for graph in graphs:
            for a, b in graph.edges():
                kinds = {graph.nodes[a]["bipartite"], graph.nodes[b]["bipartite"]}
                assert kinds == {"cluster", "domain"}

    def test_fig6_totals(self, small_result):
        rows = report.fig6_network_distribution(small_result)
        assert sum(r[1] for r in rows) == len(small_result.all_ad_ids)
        for _, ads, malicious in rows:
            assert malicious <= ads

    def test_fig6_abuse_shape(self, small_result):
        rows = dict(
            (name, (ads, mal))
            for name, ads, mal in report.fig6_network_distribution(small_result)
        )
        if "Ad-Maven" in rows and "OneSignal" in rows:
            admaven_ads, admaven_mal = rows["Ad-Maven"]
            onesignal_ads, onesignal_mal = rows["OneSignal"]
            assert admaven_mal / max(admaven_ads, 1) > onesignal_mal / max(
                onesignal_ads, 1
            )

    def test_cost_report(self, small_result):
        cost = report.advertiser_cost_report(small_result)
        assert cost.max_cost_usd >= cost.mean_cost_usd >= 0.0
        assert cost.cpm_usd == report.STANDARD_CPM_USD

    def test_latency_report(self, small_dataset):
        data = report.latency_report(small_dataset.first_latencies_min)
        assert data["within_window_pct"] > 90.0
        assert data["cdf_minutes"][1440.0] >= data["cdf_minutes"][15.0]

    def test_latency_report_empty(self):
        assert report.latency_report([])["sites"] == 0


class TestReportEdgeCases:
    def test_fig5_empty_when_nothing_suspicious(self, small_result):
        from repro.core.labeling import LabelingResult
        from repro.core.report import fig5_meta_graphs
        from repro.core.pipeline import PipelineResult
        import copy

        clean = copy.copy(small_result)
        clean.suspicion = copy.copy(small_result.suspicion)
        clean.suspicion.suspicious_meta_ids = set()
        assert fig5_meta_graphs(clean, top=2) == []

    def test_table5_sample_larger_than_residuals(self, small_result):
        from repro.core.report import table5_singletons

        rows = table5_singletons(small_result, sample=10_000)
        assert len(rows) == len(small_result.residual_singleton_clusters)

    def test_cost_report_empty_when_all_malicious(self):
        from repro.core.report import CostReport

        report = CostReport(per_domain_visits={})
        assert report.max_cost_usd == 0.0
        assert report.mean_cost_usd == 0.0

    def test_ads_are_subset_of_records(self, small_result):
        record_ids = {r.wpn_id for r in small_result.records}
        assert small_result.all_ad_ids <= record_ids
        assert small_result.malicious_ad_ids <= record_ids
