"""The reduceat silhouette against the indicator-matmul oracle."""

import numpy as np
import pytest

from repro.core.silhouette import (
    average_silhouette,
    silhouette_samples,
    silhouette_samples_reference,
)


def random_case(rng, n, k):
    dist = rng.random((n, n))
    dist = (dist + dist.T) / 2
    np.fill_diagonal(dist, 0.0)
    labels = rng.integers(0, k, size=n)
    # Guarantee at least two distinct labels.
    labels[0], labels[1] = 0, 1
    return dist, labels


class TestFastMatchesReference:
    def test_random_labelings(self):
        rng = np.random.default_rng(17)
        for n, k in ((5, 2), (12, 3), (40, 7), (60, 25), (80, 79)):
            dist, labels = random_case(rng, n, k)
            fast = silhouette_samples(dist, labels)
            oracle = silhouette_samples_reference(dist, labels)
            np.testing.assert_allclose(fast, oracle, rtol=1e-10, atol=1e-12)

    def test_noncontiguous_label_values(self):
        rng = np.random.default_rng(3)
        dist, _ = random_case(rng, 20, 2)
        labels = np.array([100, -5, 7, 100, -5, 7, 100, -5, 7, 100] * 2)
        fast = silhouette_samples(dist, labels)
        oracle = silhouette_samples_reference(dist, labels)
        np.testing.assert_allclose(fast, oracle, rtol=1e-10, atol=1e-12)

    def test_singletons_score_zero(self):
        rng = np.random.default_rng(4)
        dist, _ = random_case(rng, 6, 2)
        labels = np.array([0, 0, 1, 1, 2, 3])  # two singletons
        fast = silhouette_samples(dist, labels)
        assert fast[4] == 0.0 and fast[5] == 0.0

    def test_float32_distances_accumulate_in_float64(self):
        rng = np.random.default_rng(8)
        dist, labels = random_case(rng, 30, 4)
        fast32 = silhouette_samples(dist.astype(np.float32), labels)
        fast64 = silhouette_samples(dist, labels)
        np.testing.assert_allclose(fast32, fast64, atol=1e-6)

    def test_rejects_degenerate_inputs(self):
        dist = np.zeros((3, 3))
        with pytest.raises(ValueError):
            silhouette_samples(dist, np.zeros(3, dtype=int))  # single cluster
        with pytest.raises(ValueError):
            silhouette_samples(np.zeros((3, 2)), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            silhouette_samples(dist, np.zeros(4, dtype=int))

    def test_average_conventions(self):
        rng = np.random.default_rng(9)
        dist, labels = random_case(rng, 10, 3)
        assert average_silhouette(dist, np.zeros(10, dtype=int)) == -1.0
        assert average_silhouette(dist, np.arange(10)) == -1.0
        score = average_silhouette(dist, labels)
        assert -1.0 <= score <= 1.0
