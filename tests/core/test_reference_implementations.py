"""Validate the vectorized analysis kernels against naive references.

The production code computes silhouettes with one matrix product and soft
cosine through the ``S = E E'`` document-embedding reduction; these tests
recompute both the slow, obviously-correct way and demand agreement.
"""

import numpy as np
import pytest

from repro.core.silhouette import silhouette_samples
from repro.core.textsim import SoftCosineModel


def naive_silhouette(distances: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Textbook per-point silhouette, straight from the definition."""
    n = distances.shape[0]
    out = np.zeros(n)
    for i in range(n):
        own = [j for j in range(n) if labels[j] == labels[i] and j != i]
        if not own:
            out[i] = 0.0
            continue
        a = np.mean([distances[i, j] for j in own])
        b = min(
            np.mean([distances[i, j] for j in range(n) if labels[j] == other])
            for other in set(labels.tolist())
            if other != labels[i]
        )
        out[i] = (b - a) / max(a, b) if max(a, b) > 0 else 0.0
    return out


def naive_soft_cosine(bow_a, bow_b, similarity):
    """softcossim straight from the paper's definition: a'Sb / norms."""
    num = bow_a @ similarity @ bow_b
    da = np.sqrt(bow_a @ similarity @ bow_a)
    db = np.sqrt(bow_b @ similarity @ bow_b)
    if da == 0 or db == 0:
        return 0.0
    return num / (da * db)


class TestSilhouetteAgainstNaive:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_matches_definition(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 16))
        m = rng.random((n, n))
        m = (m + m.T) / 2
        np.fill_diagonal(m, 0.0)
        labels = rng.integers(0, max(2, n // 3), size=n)
        if len(set(labels.tolist())) < 2:
            labels[0] = labels.max() + 1
        fast = silhouette_samples(m, labels)
        slow = naive_silhouette(m, labels)
        assert np.allclose(fast, slow, atol=1e-9)


class TestSoftCosineReduction:
    def test_doc_embedding_shortcut_equals_bilinear_form(self):
        """With S = E E^T, cosine of summed embeddings == soft cosine."""
        corpus = [
            ["win", "prize", "claim"],
            ["win", "prize", "now"],
            ["weather", "storm", "alert"],
            ["storm", "alert", "prize"],
            ["claim", "claim", "prize"],  # repeated token -> count 2
        ]
        model = SoftCosineModel(dimensions=8, blend=0.0).fit(corpus)
        vocabulary = model.vocabulary
        E = model.embeddings
        S = E @ E.T

        def bow(tokens):
            v = np.zeros(len(vocabulary))
            for t in tokens:
                if t in vocabulary:
                    v[vocabulary[t]] += 1
            return v

        fast = model.similarity_matrix(corpus)
        for i in range(len(corpus)):
            for j in range(len(corpus)):
                expected = naive_soft_cosine(bow(corpus[i]), bow(corpus[j]), S)
                assert fast[i, j] == pytest.approx(expected, abs=1e-9)

    def test_blend_is_convex_combination(self):
        corpus = [["a", "b"], ["b", "c"], ["c", "d", "a"]]
        exact = SoftCosineModel(dimensions=4, blend=1.0).fit(corpus)
        soft = SoftCosineModel(dimensions=4, blend=0.0).fit(corpus)
        half = SoftCosineModel(dimensions=4, blend=0.5).fit(corpus)
        se = exact.similarity_matrix(corpus)
        ss = soft.similarity_matrix(corpus)
        sh = half.similarity_matrix(corpus)
        # Off-diagonal entries (diagonal is pinned to 1).
        for i in range(3):
            for j in range(3):
                if i != j:
                    blended = np.clip(0.5 * se[i, j] + 0.5 * ss[i, j], 0, 1)
                    assert sh[i, j] == pytest.approx(blended, abs=1e-9)
