"""Tests for agglomerative clustering, dendrogram cuts, and silhouette."""

import numpy as np
import pytest

from repro.core.clustering import (
    AgglomerativeClusterer,
    Linkage,
    Merge,
    cluster_records,
    select_cut,
)
from repro.core.silhouette import average_silhouette, silhouette_samples


def block_distance_matrix(groups, within=0.05, between=0.9, seed=0):
    """Distance matrix with clearly separated clusters of given sizes."""
    rng = np.random.default_rng(seed)
    n = sum(groups)
    labels = np.repeat(np.arange(len(groups)), groups)
    dist = np.where(
        labels[:, None] == labels[None, :],
        within + rng.random((n, n)) * 0.02,
        between + rng.random((n, n)) * 0.05,
    )
    dist = (dist + dist.T) / 2
    np.fill_diagonal(dist, 0.0)
    return dist, labels


class TestAgglomerative:
    def test_recovers_block_structure(self):
        dist, truth = block_distance_matrix([5, 7, 4])
        linkage = AgglomerativeClusterer().fit(dist)
        labels = linkage.cut(0.5)
        assert labels.max() + 1 == 3
        # same truth group <=> same label
        for i in range(len(truth)):
            for j in range(len(truth)):
                assert (labels[i] == labels[j]) == (truth[i] == truth[j])

    def test_cut_zero_keeps_exact_duplicates_together(self):
        dist = np.array([
            [0.0, 0.0, 0.8],
            [0.0, 0.0, 0.8],
            [0.8, 0.8, 0.0],
        ])
        linkage = AgglomerativeClusterer().fit(dist)
        labels = linkage.cut(0.0)
        assert labels[0] == labels[1] != labels[2]

    def test_cut_above_max_height_merges_all(self):
        dist, _ = block_distance_matrix([3, 3])
        linkage = AgglomerativeClusterer().fit(dist)
        assert linkage.n_clusters_at(10.0) == 1

    def test_merge_count(self):
        dist, _ = block_distance_matrix([4, 4])
        linkage = AgglomerativeClusterer().fit(dist)
        assert len(linkage.merges) == 7

    def test_heights_nondecreasing_along_tree(self):
        # Average linkage has no inversions: sorted merges must respect the
        # tree (every child id appears before its parent uses it).
        dist, _ = block_distance_matrix([6, 6, 6], seed=3)
        linkage = AgglomerativeClusterer().fit(dist)
        heights = linkage.heights()
        assert (np.diff(heights) >= -1e-12).all()

    def test_average_linkage_height_is_mean_pairwise(self):
        dist = np.array([
            [0.0, 0.2, 0.6, 0.7],
            [0.2, 0.0, 0.8, 0.5],
            [0.6, 0.8, 0.0, 0.1],
            [0.7, 0.5, 0.1, 0.0],
        ])
        linkage = AgglomerativeClusterer("average").fit(dist)
        final = max(m.height for m in linkage.merges)
        assert final == pytest.approx((0.6 + 0.7 + 0.8 + 0.5) / 4)

    def test_single_and_complete_linkage(self):
        dist = np.array([
            [0.0, 0.2, 0.6],
            [0.2, 0.0, 0.4],
            [0.6, 0.4, 0.0],
        ])
        single = AgglomerativeClusterer("single").fit(dist)
        complete = AgglomerativeClusterer("complete").fit(dist)
        assert max(m.height for m in single.merges) == pytest.approx(0.4)
        assert max(m.height for m in complete.merges) == pytest.approx(0.6)

    def test_trivial_sizes(self):
        assert AgglomerativeClusterer().fit(np.zeros((0, 0))).merges == []
        assert AgglomerativeClusterer().fit(np.zeros((1, 1))).merges == []
        two = AgglomerativeClusterer().fit(np.array([[0.0, 0.3], [0.3, 0.0]]))
        assert len(two.merges) == 1
        assert two.merges[0].height == pytest.approx(0.3)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            AgglomerativeClusterer().fit(np.zeros((2, 3)))

    def test_rejects_unknown_linkage(self):
        with pytest.raises(ValueError):
            AgglomerativeClusterer("ward")

    def test_linkage_validates_merge_count(self):
        with pytest.raises(ValueError):
            Linkage(3, [Merge(0, 1, 0.1, 2, 3)])

    def test_labels_are_contiguous(self):
        dist, _ = block_distance_matrix([3, 3, 3])
        labels = AgglomerativeClusterer().fit(dist).cut(0.5)
        assert set(labels) == set(range(labels.max() + 1))


class TestSilhouette:
    def test_perfect_clusters_score_high(self):
        dist, truth = block_distance_matrix([5, 5])
        assert average_silhouette(dist, truth) > 0.85

    def test_bad_labels_score_low(self):
        dist, truth = block_distance_matrix([5, 5])
        scrambled = np.array([0, 1] * 5)
        assert average_silhouette(dist, scrambled) < average_silhouette(dist, truth)

    def test_degenerate_labelings(self):
        dist, _ = block_distance_matrix([4, 4])
        assert average_silhouette(dist, np.zeros(8, dtype=int)) == -1.0
        assert average_silhouette(dist, np.arange(8)) == -1.0

    def test_singletons_get_zero(self):
        dist, _ = block_distance_matrix([4, 1])
        labels = np.array([0, 0, 0, 0, 1])
        samples = silhouette_samples(dist, labels)
        assert samples[4] == 0.0

    def test_samples_bounded(self):
        dist, truth = block_distance_matrix([4, 6, 3])
        samples = silhouette_samples(dist, truth)
        assert (samples >= -1.0).all() and (samples <= 1.0).all()

    def test_requires_two_clusters(self):
        dist, _ = block_distance_matrix([4])
        with pytest.raises(ValueError):
            silhouette_samples(dist, np.zeros(4, dtype=int))

    def test_noncontiguous_labels_ok(self):
        dist, truth = block_distance_matrix([5, 5])
        relabeled = np.where(truth == 0, 17, 99)
        assert average_silhouette(dist, relabeled) == pytest.approx(
            average_silhouette(dist, truth)
        )


class TestSelectCut:
    def test_finds_block_structure(self):
        dist, truth = block_distance_matrix([8, 8, 8])
        linkage = AgglomerativeClusterer().fit(dist)
        threshold, labels, score = select_cut(
            linkage, dist, min_cluster_fraction=0.05
        )
        assert labels.max() + 1 == 3
        assert score > 0.8

    def test_conservative_constraint_respected(self):
        dist, _ = block_distance_matrix([10, 10])
        linkage = AgglomerativeClusterer().fit(dist)
        _, labels, _ = select_cut(linkage, dist, min_cluster_fraction=0.4)
        assert labels.max() + 1 >= 8  # at least 0.4 * 20

    def test_explicit_candidates(self):
        dist, _ = block_distance_matrix([5, 5])
        linkage = AgglomerativeClusterer().fit(dist)
        threshold, _, _ = select_cut(linkage, dist, candidates=[0.5])
        assert threshold == 0.5

    def test_cluster_records_wrapper(self):
        dist, _ = block_distance_matrix([6, 6])
        labels, linkage, threshold, score = cluster_records(dist, threshold=0.5)
        assert labels.max() + 1 == 2
        assert threshold == 0.5
        assert -1.0 <= score <= 1.0


class TestScipyInterop:
    def test_to_scipy_shape_and_validity(self):
        from scipy.cluster.hierarchy import is_valid_linkage

        dist, _ = block_distance_matrix([5, 6, 4])
        linkage = AgglomerativeClusterer().fit(dist)
        matrix = linkage.to_scipy()
        assert matrix.shape == (14, 4)
        assert is_valid_linkage(matrix)

    def test_to_scipy_cuts_agree(self):
        from scipy.cluster.hierarchy import fcluster

        dist, _ = block_distance_matrix([5, 6, 4], seed=9)
        linkage = AgglomerativeClusterer().fit(dist)
        matrix = linkage.to_scipy()
        for threshold in (0.02, 0.1, 0.5, 1.0):
            ours = linkage.cut(threshold)
            theirs = fcluster(matrix, t=threshold, criterion="distance")
            n = len(ours)
            for i in range(n):
                for j in range(i):
                    assert (ours[i] == ours[j]) == (theirs[i] == theirs[j])

    def test_to_scipy_trivial(self):
        assert AgglomerativeClusterer().fit(np.zeros((1, 1))).to_scipy().shape == (0, 4)
