"""Tests for URL-path Jaccard distances and the combined distance."""

import numpy as np
import pytest

from repro.core.distance import compute_distances
from repro.core.textsim import SoftCosineModel
from repro.core.urlsim import url_path_distance_matrix
from tests.core.test_records_features import make_record


class TestUrlPathDistance:
    def test_identical_sets(self):
        sets = [frozenset({"a", "b"}), frozenset({"a", "b"})]
        dist = url_path_distance_matrix(sets)
        assert dist[0, 1] == pytest.approx(0.0)

    def test_disjoint_sets(self):
        dist = url_path_distance_matrix([frozenset({"a"}), frozenset({"b"})])
        assert dist[0, 1] == pytest.approx(1.0)

    def test_partial_overlap(self):
        dist = url_path_distance_matrix(
            [frozenset({"a", "b"}), frozenset({"b", "c"})]
        )
        assert dist[0, 1] == pytest.approx(2 / 3)

    def test_empty_conventions(self):
        dist = url_path_distance_matrix(
            [frozenset(), frozenset(), frozenset({"a"})]
        )
        assert dist[0, 1] == pytest.approx(0.0)   # both empty
        assert dist[0, 2] == pytest.approx(1.0)   # empty vs non-empty

    def test_all_empty(self):
        dist = url_path_distance_matrix([frozenset(), frozenset()])
        assert np.allclose(dist, 0.0)

    def test_matches_scalar_jaccard(self):
        from repro.util.textproc import jaccard_distance

        sets = [frozenset({"x", "y", "z"}), frozenset({"y", "q"}),
                frozenset({"z"}), frozenset()]
        dist = url_path_distance_matrix(sets)
        for i in range(4):
            for j in range(4):
                assert dist[i, j] == pytest.approx(
                    jaccard_distance(set(sets[i]), set(sets[j])), abs=1e-9
                )

    def test_symmetric_zero_diagonal(self):
        sets = [frozenset({"a"}), frozenset({"a", "b"}), frozenset({"c"})]
        dist = url_path_distance_matrix(sets)
        assert np.allclose(dist, dist.T)
        assert np.allclose(np.diag(dist), 0.0)


class TestComputeDistances:
    def records(self):
        same_a = make_record()
        same_b = make_record(wpn_id="wpn0000002",
                             source_url="https://www.other.com/")
        different = make_record(
            wpn_id="wpn0000003",
            title="Weather alert for Dallas",
            body="A thunderstorm is expected near Dallas until 5 PM.",
            landing_url="https://news-site.com/weather/alerts/1234/99",
        )
        return [same_a, same_b, different]

    def test_total_is_mean_of_components(self):
        matrices = compute_distances(self.records())
        assert np.allclose(
            matrices.total, (matrices.text + matrices.url) / 2.0, atol=1e-12
        )

    def test_identical_messages_distance_zero(self):
        matrices = compute_distances(self.records())
        assert matrices.total[0, 1] == pytest.approx(0.0, abs=1e-9)

    def test_unrelated_messages_far(self):
        matrices = compute_distances(self.records())
        assert matrices.total[0, 2] > 0.5

    def test_size(self):
        matrices = compute_distances(self.records())
        assert matrices.size == 3

    def test_accepts_prefit_model(self):
        records = self.records()
        model = SoftCosineModel().fit(
            [["win", "free"], ["weather", "alert"]]
        )
        matrices = compute_distances(records, text_model=model)
        assert matrices.total.shape == (3, 3)

    def test_rejects_misaligned_features(self):
        from repro.core.features import extract_all

        records = self.records()
        with pytest.raises(ValueError):
            compute_distances(records, features=extract_all(records[:2]))
