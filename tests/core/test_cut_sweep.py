"""Incremental cut sweeps against the rebuild-from-scratch oracles."""

import numpy as np
import pytest

from repro.core.clustering import (
    AgglomerativeClusterer,
    CutSelection,
    IncrementalCutSweep,
    IncrementalSilhouetteSweep,
    evaluate_cuts,
)
from repro.core.silhouette import average_silhouette


def random_linkage(rng, n):
    dist = rng.random((n, n))
    dist = (dist + dist.T) / 2
    np.fill_diagonal(dist, 0.0)
    return AgglomerativeClusterer().fit(dist), dist


def evaluate_cuts_oracle(linkage, distances, candidates):
    """The pre-sweep selection: rebuild labels + score per candidate."""
    best = (0.0, -np.inf)
    found = False
    for threshold in [float(t) for t in candidates]:
        labels = linkage.cut(threshold)
        score = average_silhouette(distances, labels)
        if score > best[1]:
            best = (threshold, score)
            found = True
    assert found
    return best


class TestIncrementalCutSweep:
    def test_labels_match_cut_exactly(self):
        rng = np.random.default_rng(21)
        for trial in range(5):
            linkage, _ = random_linkage(rng, int(rng.integers(5, 40)))
            heights = linkage.heights()
            thresholds = sorted(
                float(t)
                for t in rng.choice(heights, size=min(6, heights.size))
            ) + [float(heights.max()) + 0.1]
            sweep = IncrementalCutSweep(linkage)
            for t in thresholds:
                np.testing.assert_array_equal(
                    sweep.labels_at(t), linkage.cut(t)
                )

    def test_rejects_decreasing_thresholds(self):
        rng = np.random.default_rng(1)
        linkage, _ = random_linkage(rng, 10)
        sweep = IncrementalCutSweep(linkage)
        sweep.labels_at(0.5)
        with pytest.raises(ValueError):
            sweep.labels_at(0.4)


class TestIncrementalSilhouetteSweep:
    def test_scores_match_rebuilt_silhouette(self):
        rng = np.random.default_rng(33)
        for trial in range(5):
            n = int(rng.integers(8, 50))
            linkage, dist = random_linkage(rng, n)
            heights = linkage.heights()
            quantiles = np.linspace(0.05, 0.95, 9)
            thresholds = sorted(set(float(np.quantile(heights, q)) for q in quantiles))
            sweep = IncrementalSilhouetteSweep(linkage, dist)
            for t in thresholds:
                expected = average_silhouette(dist, linkage.cut(t))
                got = sweep.score_at(t)
                assert got == pytest.approx(expected, rel=1e-9, abs=1e-12)

    def test_degenerate_cuts_score_minus_one(self):
        rng = np.random.default_rng(2)
        linkage, dist = random_linkage(rng, 12)
        sweep = IncrementalSilhouetteSweep(linkage, dist)
        assert sweep.score_at(-1.0) == -1.0  # every point its own cluster
        assert sweep.score_at(2.0) == -1.0  # everything merged

    def test_rejects_decreasing_thresholds(self):
        rng = np.random.default_rng(5)
        linkage, dist = random_linkage(rng, 10)
        sweep = IncrementalSilhouetteSweep(linkage, dist)
        sweep.score_at(0.6)
        with pytest.raises(ValueError):
            sweep.score_at(0.1)

    def test_shape_mismatch_raises(self):
        rng = np.random.default_rng(6)
        linkage, dist = random_linkage(rng, 10)
        with pytest.raises(ValueError):
            IncrementalSilhouetteSweep(linkage, dist[:8, :8])


class TestEvaluateCuts:
    def test_matches_rebuild_per_candidate_oracle(self):
        rng = np.random.default_rng(41)
        for trial in range(5):
            n = int(rng.integers(10, 60))
            linkage, dist = random_linkage(rng, n)
            heights = linkage.heights()
            candidates = [
                float(np.quantile(heights, q))
                for q in np.linspace(0.1, 0.9, 7)
            ]
            selection = evaluate_cuts(linkage, dist, candidates=candidates)
            threshold, score = evaluate_cuts_oracle(linkage, dist, candidates)
            assert selection.threshold == threshold
            assert selection.score == pytest.approx(score, rel=1e-9)
            np.testing.assert_array_equal(
                selection.labels, linkage.cut(threshold)
            )
            assert selection.n_candidates == len(candidates)

    def test_duplicate_candidates_scored_once_keep_first_win(self):
        rng = np.random.default_rng(7)
        linkage, dist = random_linkage(rng, 20)
        median = float(np.median(linkage.heights()))
        selection = evaluate_cuts(
            linkage, dist, candidates=[median, median, median]
        )
        assert isinstance(selection, CutSelection)
        assert selection.threshold == median
        assert selection.n_candidates == 3

    def test_empty_linkage(self):
        linkage = AgglomerativeClusterer().fit(np.zeros((1, 1)))
        selection = evaluate_cuts(linkage, np.zeros((1, 1)))
        assert selection.n_candidates == 0
