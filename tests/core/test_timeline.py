"""Tests for the temporal analysis of the WPN stream."""

import pytest

from repro.core.timeline import timeline_report
from tests.core.test_records_features import make_record


class TestTimelineReport:
    def test_bucket_partition(self, small_dataset):
        report = timeline_report(small_dataset.records)
        assert report.total == len(small_dataset.records)
        for bucket in report.buckets:
            assert bucket.malicious <= bucket.total
            assert bucket.ads <= bucket.total

    def test_queue_dominates_long_study(self, small_dataset):
        # With a 15-minute live window on a two-month study, most messages
        # wait for a resume drain — the design the paper built around FCM
        # queueing.
        report = timeline_report(small_dataset.records)
        assert report.queued_share > 0.5

    def test_bucket_boundaries(self):
        records = [
            make_record(wpn_id="a", sent_at_min=10.0, shown_at_min=10.5),
            make_record(wpn_id="b", sent_at_min=1500.0, shown_at_min=1500.1),
        ]
        report = timeline_report(records, bucket_minutes=1440.0)
        assert len(report.buckets) == 2
        assert report.buckets[0].total == 1
        assert report.buckets[1].total == 1

    def test_live_vs_queued_classification(self):
        records = [
            make_record(wpn_id="live", sent_at_min=5.0, shown_at_min=5.2),
            make_record(wpn_id="queued", sent_at_min=5.0, shown_at_min=700.0),
        ]
        report = timeline_report(records)
        assert report.live_deliveries == 1
        assert report.queued_deliveries == 1
        assert report.queued_share == pytest.approx(0.5)

    def test_empty(self):
        report = timeline_report([])
        assert report.total == 0
        assert report.peak_bucket() is None
        assert report.queued_share == 0.0

    def test_invalid_bucket(self):
        with pytest.raises(ValueError):
            timeline_report([], bucket_minutes=0)

    def test_peak_bucket(self):
        records = [
            make_record(wpn_id=f"x{i}", sent_at_min=100.0 + i, shown_at_min=200.0)
            for i in range(5)
        ] + [make_record(wpn_id="y", sent_at_min=5000.0, shown_at_min=5001.0)]
        report = timeline_report(records, bucket_minutes=1440.0)
        assert report.peak_bucket().total == 5


class TestDomainTurnover:
    def test_empty(self):
        from repro.core.timeline import domain_turnover

        turnover = domain_turnover([])
        assert turnover.n_messages == 0
        assert turnover.switches_per_message == 0.0

    def test_counts_switches(self):
        from repro.core.timeline import domain_turnover

        records = [
            make_record(wpn_id="a", sent_at_min=1.0, shown_at_min=2.0,
                        landing_url="https://one.xyz/p"),
            make_record(wpn_id="b", sent_at_min=2.0, shown_at_min=3.0,
                        landing_url="https://one.xyz/p"),
            make_record(wpn_id="c", sent_at_min=3.0, shown_at_min=4.0,
                        landing_url="https://two.club/p"),
        ]
        turnover = domain_turnover(records)
        assert turnover.n_domains == 2
        assert turnover.n_switches == 1
        assert turnover.span_min == 2.0

    def test_malicious_campaigns_rotate_more(self, small_result):
        """The evasion footprint: malicious campaign clusters cycle landing
        domains far more than benign ones."""
        from repro.core.timeline import domain_turnover

        truth_mal, truth_ben = [], []
        for cluster in small_result.clusters:
            if cluster.cluster_id not in small_result.campaign_cluster_ids:
                continue
            if len(cluster) < 3:
                continue
            turnover = domain_turnover(cluster.records)
            if any(r.truth.malicious for r in cluster.records):
                truth_mal.append(turnover.switches_per_message)
            else:
                truth_ben.append(turnover.switches_per_message)
        if truth_mal and truth_ben:
            mean = lambda xs: sum(xs) / len(xs)
            assert mean(truth_mal) > mean(truth_ben)
