"""Tests for the malicious-WPN detector (features, model, metrics)."""

import numpy as np
import pytest

from repro.core.detector import (
    FEATURE_NAMES,
    DetectionMetrics,
    LogisticRegression,
    MaliciousWpnDetector,
    compute_metrics,
    extract_detector_features,
    feature_matrix,
    rank_auc,
    train_test_split,
)
from tests.core.test_records_features import make_record


class TestFeatures:
    def test_feature_vector_shape(self):
        features = extract_detector_features(make_record())
        assert len(features) == len(FEATURE_NAMES)
        assert all(isinstance(v, float) for v in features)

    def test_scam_keywords_counted(self):
        record = make_record(title="Congratulations! You won a prize",
                             body="claim your free reward")
        features = dict(zip(FEATURE_NAMES, extract_detector_features(record)))
        assert features["scam_keyword_hits"] >= 4

    def test_shady_tld_flag(self):
        shady = make_record()  # lands on win-prize.xyz
        clean = make_record(landing_url="https://shop.example.com/deals/page")
        f_shady = dict(zip(FEATURE_NAMES, extract_detector_features(shady)))
        f_clean = dict(zip(FEATURE_NAMES, extract_detector_features(clean)))
        assert f_shady["landing_tld_shady"] == 1.0
        assert f_clean["landing_tld_shady"] == 0.0

    def test_count_marker(self):
        record = make_record(title="(3) Missed calls")
        features = dict(zip(FEATURE_NAMES, extract_detector_features(record)))
        assert features["title_has_count_marker"] == 1.0

    def test_cross_origin_flag(self):
        same = make_record(
            source_url="https://www.example.com/",
            landing_url="https://news.example.com/story/1",
        )
        features = dict(zip(FEATURE_NAMES, extract_detector_features(same)))
        assert features["crossed_origin"] == 0.0

    def test_invalid_record_rejected(self):
        record = make_record(valid=False, landing_url=None, redirect_hops=(),
                             visual_hash=None, landing_ip=None,
                             landing_registrant=None)
        with pytest.raises(ValueError):
            extract_detector_features(record)

    def test_matrix_shape(self):
        records = [make_record(), make_record(wpn_id="w2")]
        assert feature_matrix(records).shape == (2, len(FEATURE_NAMES))


class TestLogisticRegression:
    def separable_data(self, n=200, seed=0):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, 3))
        y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(float)
        return X, y

    def test_learns_separable_problem(self):
        X, y = self.separable_data()
        model = LogisticRegression(iterations=500).fit(X, y)
        accuracy = (model.predict(X) == y).mean()
        assert accuracy > 0.95

    def test_probabilities_bounded(self):
        X, y = self.separable_data()
        model = LogisticRegression().fit(X, y)
        probs = model.predict_proba(X)
        assert (probs >= 0).all() and (probs <= 1).all()

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict_proba(np.zeros((1, 3)))

    def test_rejects_bad_labels(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((2, 2)), np.array([0.0, 2.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((3, 2)), np.zeros(2))

    def test_constant_feature_handled(self):
        X = np.column_stack([np.ones(50), np.linspace(-1, 1, 50)])
        y = (X[:, 1] > 0).astype(float)
        model = LogisticRegression().fit(X, y)
        assert np.isfinite(model.predict_proba(X)).all()

    def test_regularization_shrinks_weights(self):
        X, y = self.separable_data()
        loose = LogisticRegression(l2=0.0).fit(X, y)
        tight = LogisticRegression(l2=1.0).fit(X, y)
        assert np.linalg.norm(tight.weights) < np.linalg.norm(loose.weights)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LogisticRegression(l2=-1)
        with pytest.raises(ValueError):
            LogisticRegression(iterations=0)


class TestMetrics:
    def test_perfect_classifier(self):
        scores = np.array([0.9, 0.8, 0.1, 0.2])
        labels = np.array([1, 1, 0, 0])
        metrics = compute_metrics(scores, scores >= 0.5, labels)
        assert metrics.precision == metrics.recall == metrics.f1 == 1.0
        assert metrics.auc == 1.0

    def test_inverted_classifier(self):
        scores = np.array([0.1, 0.2, 0.9, 0.8])
        labels = np.array([1, 1, 0, 0])
        assert rank_auc(scores, labels) == 0.0

    def test_auc_with_ties(self):
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        labels = np.array([1, 0, 1, 0])
        assert rank_auc(scores, labels) == pytest.approx(0.5)

    def test_auc_degenerate_classes(self):
        assert rank_auc(np.array([0.1, 0.9]), np.array([1, 1])) == 0.5

    def test_zero_division_guards(self):
        metrics = DetectionMetrics(tp=0, fp=0, tn=5, fn=0, auc=0.5)
        assert metrics.precision == 0.0
        assert metrics.recall == 0.0
        assert metrics.f1 == 0.0
        assert metrics.accuracy == 1.0


class TestSplit:
    def test_deterministic_and_disjoint(self, small_dataset):
        records = small_dataset.valid_records
        a_train, a_test = train_test_split(records, 0.3, seed=1)
        b_train, b_test = train_test_split(records, 0.3, seed=1)
        assert [r.wpn_id for r in a_test] == [r.wpn_id for r in b_test]
        assert len(a_train) + len(a_test) == len(records)
        assert not ({r.wpn_id for r in a_train} & {r.wpn_id for r in a_test})

    def test_fraction_respected(self, small_dataset):
        records = small_dataset.valid_records
        _, test = train_test_split(records, 0.3, seed=2)
        assert abs(len(test) / len(records) - 0.3) < 0.1

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split([], 1.5)


class TestEndToEndDetector:
    def test_beats_chance_on_held_out_truth(self, small_dataset, small_result):
        malicious = (
            small_result.labeling.confirmed_malicious_ids
            | small_result.suspicion.confirmed_malicious_ids
        )
        train, test = train_test_split(small_result.records, 0.3, seed=0)
        detector = MaliciousWpnDetector().fit(train, malicious)
        metrics = detector.evaluate(test)
        assert metrics.auc > 0.85
        assert metrics.f1 > 0.6

    def test_feature_weights_exposed(self, small_result):
        malicious = small_result.labeling.confirmed_malicious_ids
        detector = MaliciousWpnDetector().fit(small_result.records, malicious)
        weights = detector.feature_weights()
        assert set(weights) == set(FEATURE_NAMES)
        # At least one of the scam-content indicators must push toward
        # malicious (individual signs are unstable under collinearity).
        scam_indicators = (
            weights["scam_keyword_hits"],
            weights["page_pressure_elements"],
            weights["page_credential_or_payment_form"],
        )
        assert max(scam_indicators) > 0

    def test_unfitted_weights_raise(self):
        with pytest.raises(RuntimeError):
            MaliciousWpnDetector().feature_weights()
