"""Tests for MinerConfig, the legacy-kwarg shim, and the staged API."""

import dataclasses

import pytest

from repro import PushAdMiner
from repro.core.pipeline import MinerConfig
from repro.obs import Tracer
from repro.webenv.scenario import paper_scenario


class TestMinerConfig:
    def test_defaults_match_paper_rates(self):
        config = MinerConfig()
        assert config.seed == 0
        assert config.vt_early_rate == 0.035
        assert config.vt_late_rate == 0.50
        assert config.cut_threshold is None

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            MinerConfig().seed = 3

    def test_keyword_only(self):
        with pytest.raises(TypeError):
            MinerConfig(7)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            MinerConfig(vt_early_rate=1.5)
        with pytest.raises(ValueError):
            MinerConfig(gsb_rate=-0.1)
        with pytest.raises(ValueError):
            MinerConfig(months_elapsed=-1)

    def test_replace_revalidates(self):
        config = MinerConfig(seed=2)
        changed = config.replace(cut_threshold=0.1)
        assert changed.cut_threshold == 0.1
        assert changed.seed == 2
        assert config.cut_threshold is None
        with pytest.raises(ValueError):
            config.replace(vt_late_rate=2.0)

    def test_from_scenario(self):
        scenario = paper_scenario(seed=5)
        config = MinerConfig.from_scenario(scenario)
        assert config.seed == 5
        assert config.vt_early_rate == scenario.vt_early_rate
        assert config.vt_late_rate == scenario.vt_late_rate
        assert config.gsb_rate == scenario.gsb_rate
        assert config.vt_fp_rate == scenario.vt_benign_fp_rate

    def test_from_scenario_overrides(self):
        scenario = paper_scenario(seed=5)
        config = MinerConfig.from_scenario(
            scenario, seed=9, cut_threshold=0.2
        )
        assert config.seed == 9
        assert config.cut_threshold == 0.2
        assert config.gsb_rate == scenario.gsb_rate


class TestMinerConstruction:
    def test_config_object(self):
        config = MinerConfig(seed=4, months_elapsed=3)
        miner = PushAdMiner(config=config)
        assert miner.config is config
        assert miner.seed == 4
        assert miner.months_elapsed == 3

    def test_default_config(self):
        assert PushAdMiner().config == MinerConfig()

    def test_default_tracer_is_null_clocked(self):
        assert PushAdMiner().tracer.clock.name == "null"

    def test_explicit_tracer_kept(self):
        tracer = Tracer()
        assert PushAdMiner(tracer=tracer).tracer is tracer

    def test_loose_kwargs_are_a_hard_type_error(self):
        """The PR-2 loose-kwarg shim is gone: no warning, just TypeError."""
        with pytest.raises(TypeError):
            PushAdMiner(seed=3, cut_threshold=0.15)

    def test_positional_seed_is_a_hard_type_error(self):
        with pytest.raises(TypeError, match="MinerConfig"):
            PushAdMiner(11)

    def test_unknown_kwarg_is_type_error(self):
        with pytest.raises(TypeError):
            PushAdMiner(bogus=1)


class TestForDataset:
    def test_round_trips_scenario(self, small_dataset):
        miner = PushAdMiner.for_dataset(small_dataset)
        scenario = small_dataset.config
        assert miner.config == MinerConfig.from_scenario(scenario)
        assert miner.seed == scenario.seed

    def test_overrides_round_trip(self, small_dataset):
        miner = PushAdMiner.for_dataset(
            small_dataset, cut_threshold=0.1, months_elapsed=4
        )
        assert miner.cut_threshold == 0.1
        assert miner.months_elapsed == 4
        # untouched fields still come from the scenario
        assert miner.gsb_rate == small_dataset.config.gsb_rate

    def test_tracer_threaded(self, small_dataset):
        tracer = Tracer()
        miner = PushAdMiner.for_dataset(small_dataset, tracer=tracer)
        assert miner.tracer is tracer


class TestStagedApi:
    def test_stages_compose_to_run(self, small_dataset, small_result):
        """Calling the stage methods by hand reproduces run() exactly."""
        miner = PushAdMiner.for_dataset(small_dataset)
        records = [r for r in small_dataset.valid_records if r.valid]

        features = miner.stage_features(records)
        model = miner.stage_text_model(features)
        distances = miner.stage_distances(records, features, model)
        linkage = miner.stage_linkage(distances)
        cut = miner.stage_cut(linkage, distances)
        clusters, campaign_ids = miner.stage_campaigns(records, cut.labels)
        labeling, oracle = miner.stage_labeling(records, clusters)
        metas = miner.stage_metacluster(clusters)
        suspicion = miner.stage_suspicion(metas, labeling, oracle)

        assert cut.threshold == small_result.cut_threshold
        assert cut.score == small_result.silhouette
        assert campaign_ids == small_result.campaign_cluster_ids
        assert (
            labeling.known_malicious_ids
            == small_result.labeling.known_malicious_ids
        )
        assert (
            suspicion.confirmed_malicious_ids
            == small_result.suspicion.confirmed_malicious_ids
        )

    def test_each_stage_opens_a_span(self, small_dataset):
        tracer = Tracer()
        miner = PushAdMiner.for_dataset(small_dataset, tracer=tracer)
        miner.run(small_dataset.valid_records)
        names = [s.name for s in tracer.root.walk()]
        for stage in (
            "pipeline", "pipeline.features", "pipeline.text_model",
            "pipeline.distances", "pipeline.linkage", "pipeline.cut",
            "pipeline.campaigns", "pipeline.labeling",
            "pipeline.metacluster", "pipeline.suspicion",
        ):
            assert stage in names

    def test_fixed_cut_threshold_respected(self, small_dataset):
        miner = PushAdMiner.for_dataset(small_dataset, cut_threshold=0.2)
        result = miner.run(small_dataset.valid_records)
        assert result.cut_threshold == 0.2


class TestGoldenRegression:
    """run() output for the fixed small seed; guards refactors of the
    staged pipeline (and the seeded-SVD determinism fix) against drift."""

    GOLDEN_SUMMARY = {
        "wpns_clustered": 524,
        "wpn_clusters": 336,
        "singleton_clusters": 246,
        "ad_campaigns": 48,
        "wpn_ads": 241,
        "malicious_campaigns": 28,
        "malicious_ads": 138,
        "malicious_ad_pct": 57.3,
        "meta_clusters": 72,
        "suspicious_meta_clusters": 16,
        "residual_singletons": 69,
    }

    def test_summary(self, small_result):
        assert small_result.summary() == self.GOLDEN_SUMMARY

    def test_cut_threshold(self, small_result):
        assert small_result.cut_threshold == pytest.approx(
            0.17140258097139482, abs=1e-12
        )
        assert small_result.silhouette == pytest.approx(
            0.4229129568440438, abs=1e-12
        )
