"""Tests for blocklist labeling, propagation, and meta-clustering."""

import pytest

from repro.blocklists.base import UrlTruth
from repro.blocklists.gsb import GoogleSafeBrowsingModel
from repro.blocklists.virustotal import VirusTotalModel
from repro.core.campaigns import WpnCluster
from repro.core.labeling import label_malicious_clusters
from repro.core.metacluster import build_meta_clusters, meta_of_cluster
from repro.core.verification import ManualVerificationOracle
from tests.core.test_records_features import make_record


def mal_record(wpn_id, source, landing_domain, path="/of1a/survey/start.php?sid=1"):
    return make_record(
        wpn_id=wpn_id,
        source_url=f"https://www.{source}/",
        landing_url=f"https://{landing_domain}{path}",
    )


def benign_record(wpn_id, source, landing_domain):
    from repro.core.records import WpnTruth

    return make_record(
        wpn_id=wpn_id,
        source_url=f"https://www.{source}/",
        landing_url=f"https://{landing_domain}/deals/flash.html?cmp=1",
        title="Flash sale",
        body="Save 50% at SuperMart",
        truth=WpnTruth(
            kind="ad", family_name="shopping_deal", category="shopping deal",
            campaign_id="cmp00002", operation_id=None,
            malicious=False, is_one_off=False,
        ),
    )


def scanners(records, vt_rate=1.0, gsb_rate=0.0, seed=1):
    truth = UrlTruth.from_records(records)
    vt = VirusTotalModel(truth, seed=seed, early_rate=0.0, late_rate=vt_rate,
                         fp_rate=0.0)
    gsb = GoogleSafeBrowsingModel(truth, seed=seed, coverage=gsb_rate)
    return vt, gsb


class TestLabeling:
    def test_flagged_urls_become_known_malicious(self):
        records = [mal_record("w1", "a.com", "evil.xyz"),
                   mal_record("w2", "b.com", "evil2.xyz")]
        clusters = [WpnCluster(0, records)]
        vt, gsb = scanners(records)
        oracle = ManualVerificationOracle(unconfirmable_rate=0.0)
        result = label_malicious_clusters(clusters, vt, gsb, oracle)
        assert result.known_malicious_ids == {"w1", "w2"}
        assert result.malicious_cluster_ids == {0}

    def test_guilt_by_association_propagates(self):
        flagged = mal_record("w1", "a.com", "evil.xyz")
        sibling = mal_record("w2", "b.com", "rotated-domain.club")
        clusters = [WpnCluster(0, [flagged, sibling])]
        truth = UrlTruth({flagged.landing_url: True, sibling.landing_url: True})
        vt = VirusTotalModel(truth, seed=1, early_rate=0.0, late_rate=1.0)
        # Make VT flag only the first URL.
        vt_restricted = VirusTotalModel(
            UrlTruth({flagged.landing_url: True}), seed=1,
            early_rate=0.0, late_rate=1.0, fp_rate=0.0,
        )
        gsb = GoogleSafeBrowsingModel(UrlTruth({}), seed=1, coverage=0.0)
        oracle = ManualVerificationOracle(unconfirmable_rate=0.0)
        result = label_malicious_clusters(clusters, vt_restricted, gsb, oracle)
        assert "w1" in result.known_malicious_ids
        assert "w2" in result.propagated_confirmed_ids
        assert result.confirmed_malicious_ids == {"w1", "w2"}

    def test_benign_cluster_untouched(self):
        records = [benign_record("w1", "a.com", "shop.com"),
                   benign_record("w2", "b.com", "shop.com")]
        clusters = [WpnCluster(0, records)]
        vt, gsb = scanners(records)
        oracle = ManualVerificationOracle()
        result = label_malicious_clusters(clusters, vt, gsb, oracle)
        assert not result.known_malicious_ids
        assert not result.malicious_cluster_ids

    def test_blocklist_fp_filtered_by_oracle(self):
        # A benign record whose URL VT wrongly flags: the manual pass drops it.
        record = benign_record("w1", "a.com", "kbb-like-benign.com")
        clusters = [WpnCluster(0, [record, benign_record("w2", "b.com", "other.com")])]
        fp_truth = UrlTruth({record.landing_url: True})  # VT "knows" wrongly
        vt = VirusTotalModel(fp_truth, seed=1, early_rate=0.0, late_rate=1.0)
        gsb = GoogleSafeBrowsingModel(UrlTruth({}), seed=1, coverage=0.0)
        oracle = ManualVerificationOracle(unconfirmable_rate=0.0)
        result = label_malicious_clusters(clusters, vt, gsb, oracle)
        assert "w1" in result.flagged_candidate_ids
        assert "w1" in result.blocklist_fp_ids
        assert not result.known_malicious_ids
        assert not result.malicious_cluster_ids

    def test_gsb_alone_suffices(self):
        records = [mal_record("w1", "a.com", "evil.xyz")]
        clusters = [WpnCluster(0, records)]
        truth = UrlTruth.from_records(records)
        vt = VirusTotalModel(truth, seed=1, early_rate=0.0, late_rate=0.0,
                             fp_rate=0.0)
        gsb = GoogleSafeBrowsingModel(truth, seed=1, coverage=1.0)
        oracle = ManualVerificationOracle(unconfirmable_rate=0.0)
        result = label_malicious_clusters(clusters, vt, gsb, oracle)
        assert result.known_malicious_ids == {"w1"}


class TestMetaClustering:
    def clusters(self):
        # c0 and c1 share evil.xyz; c2 is isolated on its own domain.
        c0 = WpnCluster(0, [mal_record("w1", "a.com", "evil.xyz")])
        c1 = WpnCluster(1, [
            mal_record("w2", "b.com", "evil.xyz"),
            mal_record("w3", "c.com", "other.club"),
        ])
        c2 = WpnCluster(2, [benign_record("w4", "d.com", "lonely.com")])
        return [c0, c1, c2]

    def test_shared_domain_merges(self):
        metas = build_meta_clusters(self.clusters())
        assert len(metas) == 2
        sizes = sorted(len(m.clusters) for m in metas)
        assert sizes == [1, 2]

    def test_domains_collected(self):
        metas = build_meta_clusters(self.clusters())
        big = max(metas, key=lambda m: len(m.clusters))
        assert big.domains == {"evil.xyz", "other.club"}

    def test_meta_of_cluster_index(self):
        metas = build_meta_clusters(self.clusters())
        index = meta_of_cluster(metas)
        assert index[0] is index[1]
        assert index[2] is not index[0]

    def test_records_and_ids(self):
        metas = build_meta_clusters(self.clusters())
        big = max(metas, key=lambda m: len(m.clusters))
        assert big.wpn_ids == {"w1", "w2", "w3"}
        assert len(big.records) == 3
        assert (1, "evil.xyz") in big.edges()

    def test_deterministic_meta_ids(self):
        a = build_meta_clusters(self.clusters())
        b = build_meta_clusters(self.clusters())
        assert [m.cluster_ids for m in a] == [m.cluster_ids for m in b]

    def test_transitive_merge(self):
        # c0-dA-c1, c1-dB-c2: one component of three clusters.
        c0 = WpnCluster(0, [mal_record("w1", "a.com", "dom-a.xyz")])
        c1 = WpnCluster(1, [
            mal_record("w2", "b.com", "dom-a.xyz"),
            mal_record("w3", "b2.com", "dom-b.xyz"),
        ])
        c2 = WpnCluster(2, [mal_record("w4", "c.com", "dom-b.xyz")])
        metas = build_meta_clusters([c0, c1, c2])
        assert len(metas) == 1
        assert metas[0].cluster_ids == {0, 1, 2}
