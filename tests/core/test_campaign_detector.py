"""Tests for the campaign-level malicious detector."""

import pytest

from repro.core.detector import (
    CAMPAIGN_FEATURE_NAMES,
    MaliciousCampaignDetector,
    extract_campaign_features,
)


class TestCampaignFeatures:
    def test_vector_shape(self, small_result):
        cluster = next(c for c in small_result.clusters if len(c) > 1)
        features = extract_campaign_features(cluster)
        assert len(features) == len(CAMPAIGN_FEATURE_NAMES)

    def test_structural_features(self, small_result):
        cluster = next(
            c for c in small_result.clusters
            if c.cluster_id in small_result.campaign_cluster_ids
        )
        named = dict(zip(CAMPAIGN_FEATURE_NAMES, extract_campaign_features(cluster)))
        assert named["cluster_size"] == len(cluster)
        assert named["n_source_domains"] == len(cluster.source_etld1s)
        assert named["n_source_domains"] > 1  # it is a campaign
        assert 0.0 < named["distinct_titles_ratio"] <= 1.0

    def test_invalid_only_cluster_rejected(self):
        from repro.core.campaigns import WpnCluster
        from tests.core.test_records_features import make_record

        invalid = make_record(valid=False, landing_url=None, redirect_hops=(),
                              visual_hash=None, landing_ip=None,
                              landing_registrant=None)
        with pytest.raises(ValueError):
            extract_campaign_features(WpnCluster(0, [invalid]))


def pipeline_cluster_labels(result):
    """Clusters with any pipeline-confirmed-malicious member."""
    confirmed = (
        result.labeling.confirmed_malicious_ids
        | result.suspicion.confirmed_malicious_ids
    )
    return {c.cluster_id for c in result.clusters if c.wpn_ids & confirmed}


class TestCampaignDetector:
    def test_learns_from_pipeline_labels(self, small_result):
        clusters = list(small_result.clusters)
        detector = MaliciousCampaignDetector().fit(
            clusters, pipeline_cluster_labels(small_result)
        )
        metrics = detector.evaluate(clusters)
        assert metrics.auc > 0.85
        assert metrics.recall > 0.5
        assert metrics.precision > 0.7

    def test_weights_exposed(self, small_result):
        detector = MaliciousCampaignDetector().fit(
            small_result.clusters, small_result.malicious_campaign_cluster_ids
        )
        weights = detector.feature_weights()
        assert set(weights) == set(CAMPAIGN_FEATURE_NAMES)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MaliciousCampaignDetector().feature_weights()

    def test_scores_bounded(self, small_result):
        detector = MaliciousCampaignDetector().fit(
            small_result.clusters, small_result.malicious_campaign_cluster_ids
        )
        scores = detector.score(small_result.clusters)
        assert (scores >= 0).all() and (scores <= 1).all()
