"""Tests for corpus description statistics."""

import pytest

from repro.core.describe import describe_corpus
from tests.core.test_records_features import make_record


class TestDescribeCorpus:
    def test_real_corpus(self, small_dataset):
        description = describe_corpus(small_dataset.records)
        assert description.total == len(small_dataset.records)
        assert description.valid == len(small_dataset.valid_records)
        assert set(description.by_platform) == {"desktop", "mobile"}
        # Paper shape: desktop click validity far above mobile.
        assert (
            description.valid_rate_by_platform["desktop"]
            > description.valid_rate_by_platform["mobile"]
        )
        assert description.by_network
        assert description.by_category
        assert description.redirect_hops["max"] >= 1

    def test_render_is_readable(self, small_dataset):
        text = describe_corpus(small_dataset.records).render()
        assert "WPNs:" in text
        assert "platforms:" in text
        assert len(text.splitlines()) >= 6

    def test_empty_corpus(self):
        description = describe_corpus([])
        assert description.total == 0
        assert description.messages_per_source["max"] == 0.0
        description.render()  # must not crash

    def test_counts_by_hand(self):
        records = [
            make_record(wpn_id="a"),
            make_record(wpn_id="b", source_url="https://www.other.com/"),
            make_record(wpn_id="c", valid=False, landing_url=None,
                        redirect_hops=(), visual_hash=None,
                        landing_ip=None, landing_registrant=None),
        ]
        description = describe_corpus(records)
        assert description.total == 3 and description.valid == 2
        assert description.messages_per_source["max"] == 2.0  # example.com twice
        assert description.top_landing_tlds[0][0] == "xyz"
