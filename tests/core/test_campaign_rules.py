"""Tests for cluster building and the ad-campaign rule."""

import numpy as np
import pytest

from repro.core.campaigns import (
    WpnCluster,
    ad_campaign_clusters,
    build_clusters,
    is_ad_campaign,
    singleton_clusters,
)
from tests.core.test_records_features import make_record


def record_from(source, landing, wpn_id, title="t"):
    return make_record(
        wpn_id=wpn_id,
        source_url=f"https://www.{source}/",
        landing_url=f"https://{landing}/of1a/survey/start.php?sid=1",
        title=title,
    )


class TestBuildClusters:
    def test_groups_by_label(self):
        records = [record_from("a.com", "x.xyz", f"w{i}") for i in range(4)]
        labels = np.array([0, 0, 1, 1])
        clusters = build_clusters(records, labels)
        assert [len(c) for c in clusters] == [2, 2]
        assert clusters[0].cluster_id == 0

    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            build_clusters([record_from("a.com", "x.xyz", "w1")], np.array([0, 1]))

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            WpnCluster(cluster_id=0, records=[])


class TestAdCampaignRule:
    def test_multi_source_is_campaign(self):
        cluster = WpnCluster(0, [
            record_from("a.com", "x.xyz", "w1"),
            record_from("b.com", "x.xyz", "w2"),
        ])
        assert is_ad_campaign(cluster)

    def test_single_source_is_not(self):
        cluster = WpnCluster(0, [
            record_from("a.com", "x.xyz", "w1"),
            record_from("a.com", "x.xyz", "w2"),
        ])
        assert not is_ad_campaign(cluster)

    def test_subdomains_collapse_to_one_source(self):
        # www.a.com and news.a.com are the same eTLD+1 source.
        cluster = WpnCluster(0, [
            record_from("www.a.com", "x.xyz", "w1"),
            record_from("news.a.com", "x.xyz", "w2"),
        ])
        assert not is_ad_campaign(cluster)

    def test_singleton_is_never_campaign(self):
        cluster = WpnCluster(0, [record_from("a.com", "x.xyz", "w1")])
        assert cluster.is_singleton
        assert not is_ad_campaign(cluster)


class TestClusterProperties:
    def test_landing_sets(self):
        cluster = WpnCluster(0, [
            record_from("a.com", "x.xyz", "w1"),
            record_from("b.com", "y.club", "w2"),
        ])
        assert cluster.landing_etld1s == {"x.xyz", "y.club"}
        assert len(cluster.landing_urls) == 2
        assert cluster.wpn_ids == {"w1", "w2"}

    def test_invalid_members_do_not_contribute_landings(self):
        invalid = make_record(
            wpn_id="w9", valid=False, landing_url=None, redirect_hops=(),
            visual_hash=None, landing_ip=None, landing_registrant=None,
        )
        cluster = WpnCluster(0, [invalid])
        assert cluster.landing_etld1s == set()

    def test_helpers(self):
        clusters = [
            WpnCluster(0, [record_from("a.com", "x.xyz", "w1")]),
            WpnCluster(1, [
                record_from("a.com", "x.xyz", "w2"),
                record_from("b.com", "x.xyz", "w3"),
            ]),
        ]
        assert len(singleton_clusters(clusters)) == 1
        assert len(ad_campaign_clusters(clusters)) == 1
        assert clusters[1].titles() == ["t", "t"]
