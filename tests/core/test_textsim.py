"""Tests for the soft cosine text similarity model."""

import numpy as np
import pytest

from repro.core.textsim import SoftCosineModel

CORPUS = [
    ["win", "free", "prize", "claim", "now"],
    ["win", "free", "prize", "claim", "now"],
    ["claim", "your", "prize", "today"],
    ["breaking", "news", "from", "atlanta"],
    ["weather", "alert", "storm", "warning"],
    ["storm", "warning", "for", "atlanta"],
    ["install", "app", "free", "premium"],
]


@pytest.fixture(scope="module")
def model():
    return SoftCosineModel(dimensions=8).fit(CORPUS)


class TestFit:
    def test_vocabulary_built(self, model):
        assert "prize" in model.vocabulary
        assert model.embeddings.shape[0] == len(model.vocabulary)

    def test_embeddings_unit_norm(self, model):
        norms = np.linalg.norm(model.embeddings, axis=1)
        nonzero = norms[norms > 0]
        assert np.allclose(nonzero, 1.0, atol=1e-9)

    def test_min_count_filters(self):
        model = SoftCosineModel(dimensions=4, min_count=2).fit(CORPUS)
        assert "install" not in model.vocabulary  # appears once
        assert "prize" in model.vocabulary

    def test_empty_corpus(self):
        model = SoftCosineModel().fit([])
        assert model.vocabulary == {}

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SoftCosineModel(blend=1.5)
        with pytest.raises(ValueError):
            SoftCosineModel(dimensions=1)


class TestSimilarity:
    def test_identical_docs_similarity_one(self, model):
        sim = model.similarity_matrix(CORPUS)
        assert sim[0, 1] == pytest.approx(1.0, abs=1e-9)

    def test_diagonal_is_one(self, model):
        sim = model.similarity_matrix(CORPUS)
        assert np.allclose(np.diag(sim), 1.0)

    def test_range_and_symmetry(self, model):
        sim = model.similarity_matrix(CORPUS)
        assert sim.min() >= 0.0 and sim.max() <= 1.0
        assert np.allclose(sim, sim.T)

    def test_related_closer_than_unrelated(self, model):
        sim = model.similarity_matrix(CORPUS)
        # two prize messages vs prize-vs-weather
        assert sim[0, 2] > sim[0, 4]

    def test_soft_component_links_cooccurring_words(self):
        # "storm"/"warning" co-occur with "atlanta" via doc 5: soft cosine
        # gives docs 4 and 3 some similarity despite no shared tokens
        # (after stopword-free tokens), while pure BoW cosine gives 0.
        hard = SoftCosineModel(dimensions=8, blend=1.0).fit(CORPUS)
        soft = SoftCosineModel(dimensions=8, blend=0.0).fit(CORPUS)
        hard_sim = hard.similarity_matrix(CORPUS)
        soft_sim = soft.similarity_matrix(CORPUS)
        assert hard_sim[3, 4] == pytest.approx(0.0, abs=1e-9)
        assert soft_sim[3, 4] > 0.0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SoftCosineModel().similarity_matrix(CORPUS)

    def test_oov_document(self, model):
        sim = model.similarity_matrix([["zzz", "qqq"], ["win", "prize"]])
        assert sim[0, 1] == pytest.approx(0.0, abs=1e-9)


class TestDistance:
    def test_distance_complements_similarity(self, model):
        sim = model.similarity_matrix(CORPUS)
        dist = model.distance_matrix(CORPUS)
        assert np.allclose(dist, 1.0 - (sim + sim.T) / 2, atol=1e-9)

    def test_zero_diagonal(self, model):
        assert np.allclose(np.diag(model.distance_matrix(CORPUS)), 0.0)

    def test_identical_docs_distance_zero(self, model):
        dist = model.distance_matrix(CORPUS)
        assert dist[0, 1] == pytest.approx(0.0, abs=1e-9)

    def test_tiny_vocabulary(self):
        corpus = [["a"], ["a", "b"]]
        model = SoftCosineModel(dimensions=8).fit(corpus)
        dist = model.distance_matrix(corpus)
        assert dist.shape == (2, 2)
        assert np.isfinite(dist).all()
