"""Unit tests for the bench regression gates (no pipeline runs)."""

from repro.bench import (
    _growth_exponent,
    annotate_speedups,
    compare_reports,
    compare_scale_reports,
)


def report(stages, summary=None):
    return {
        "pipeline": {
            "stages": [
                {"stage": name, "wall_s": wall} for name, wall in stages
            ]
        },
        "summary": summary if summary is not None else {"ad_campaigns": 5},
    }


class TestCompareReports:
    def test_clean_run_passes(self):
        baseline = report([("pipeline.cut", 1.0), ("pipeline.distances", 0.5)])
        fresh = report([("pipeline.cut", 1.1), ("pipeline.distances", 0.4)])
        failures, lines = compare_reports(fresh, baseline, tolerance=0.25)
        assert failures == []
        assert len(lines) == 2

    def test_regression_fails(self):
        baseline = report([("pipeline.cut", 1.0)])
        fresh = report([("pipeline.cut", 1.3)])
        failures, _ = compare_reports(fresh, baseline, tolerance=0.25)
        assert len(failures) == 1
        assert "pipeline.cut" in failures[0]

    def test_noise_floor_skips_tiny_stages(self):
        baseline = report([("pipeline.features", 0.01)])
        fresh = report([("pipeline.features", 0.04)])  # 4x, but tiny
        failures, lines = compare_reports(
            fresh, baseline, tolerance=0.25, min_wall=0.05
        )
        assert failures == []
        assert "not gated" in lines[0]

    def test_missing_stage_fails(self):
        baseline = report([("pipeline.cut", 1.0), ("pipeline.gone", 1.0)])
        fresh = report([("pipeline.cut", 1.0)])
        failures, _ = compare_reports(fresh, baseline)
        assert any("pipeline.gone" in f for f in failures)

    def test_summary_drift_fails(self):
        baseline = report([("pipeline.cut", 1.0)], summary={"ad_campaigns": 5})
        fresh = report([("pipeline.cut", 1.0)], summary={"ad_campaigns": 6})
        failures, _ = compare_reports(fresh, baseline)
        assert any("determinism" in f for f in failures)
        assert any("ad_campaigns" in f for f in failures)

    def test_new_stage_is_reported_not_failed(self):
        baseline = report([("pipeline.cut", 1.0)])
        fresh = report([("pipeline.cut", 1.0), ("pipeline.new", 9.0)])
        failures, lines = compare_reports(fresh, baseline)
        assert failures == []
        assert any("no baseline" in line for line in lines)


def sweep_row(scale, n, wall, candidates=None, stored=None, peak=None):
    all_pairs = n * (n - 1) // 2
    return {
        "scale": scale,
        "n_records": n,
        "wall_s": wall,
        "distances_wall_s": wall / 4,
        "peak_matrix_bytes": peak if peak is not None else n * n,
        "candidate_pairs": (
            candidates if candidates is not None else all_pairs // 4
        ),
        "stored_pairs": stored if stored is not None else all_pairs // 20,
        "clusters": n // 3,
    }


def sweep_report(rows):
    return {
        "schema": "repro-bench-scale/1",
        "scenario": {"seed": 7, "scales": [r["scale"] for r in rows]},
        "rows": rows,
        "growth": {
            key: _growth_exponent(rows, key)
            for key in ("wall_s", "peak_matrix_bytes", "candidate_pairs",
                        "stored_pairs")
        },
    }


class TestGrowthExponent:
    def test_quadratic_counter_fits_two(self):
        rows = [sweep_row(0.1, 100, 1.0, peak=100 * 100),
                sweep_row(0.2, 400, 4.0, peak=400 * 400)]
        assert _growth_exponent(rows, "peak_matrix_bytes") == 2.0

    def test_linear_wall_fits_one(self):
        rows = [sweep_row(0.1, 100, 1.0), sweep_row(0.2, 400, 4.0)]
        assert _growth_exponent(rows, "wall_s") == 1.0

    def test_degenerate_rows_yield_none(self):
        assert _growth_exponent([sweep_row(0.1, 100, 1.0)], "wall_s") is None
        flat = [sweep_row(0.1, 100, 1.0), sweep_row(0.2, 100, 2.0)]
        assert _growth_exponent(flat, "wall_s") is None


class TestCompareScaleReports:
    def baseline(self):
        return sweep_report(
            [sweep_row(0.1, 1000, 0.5), sweep_row(0.2, 2000, 1.6)]
        )

    def test_identical_run_passes(self):
        failures, lines = compare_scale_reports(self.baseline(), self.baseline())
        assert failures == []
        assert any("growth" in line for line in lines)

    def test_counter_drift_fails(self):
        fresh = self.baseline()
        fresh["rows"][1]["stored_pairs"] += 1
        failures, _ = compare_scale_reports(fresh, self.baseline())
        assert any("stored_pairs drifted" in f for f in failures)

    def test_wall_regression_fails(self):
        fresh = self.baseline()
        fresh["rows"][1]["wall_s"] = 16.0
        failures, _ = compare_scale_reports(
            fresh, self.baseline(), tolerance=0.5
        )
        assert any("regression" in f for f in failures)

    def test_dense_fraction_ceiling_binds_even_with_matching_baseline(self):
        # A degraded sweep committed as its own baseline still fails: the
        # ceilings are absolute, not relative to the baseline.
        rows = [
            sweep_row(0.1, 1000, 0.5, candidates=1000 * 999 // 2),
            sweep_row(0.2, 2000, 2.0, candidates=2000 * 1999 // 2),
        ]
        degraded = sweep_report(rows)
        failures, _ = compare_scale_reports(degraded, degraded)
        assert any("pruning collapsed" in f for f in failures)

    def test_exponent_drift_above_trajectory_fails(self):
        fresh = self.baseline()
        # Same per-scale counters, but a steeper fitted candidate curve.
        fresh["growth"]["candidate_pairs"] = (
            self.baseline()["growth"]["candidate_pairs"] + 0.2
        )
        failures, _ = compare_scale_reports(fresh, self.baseline())
        assert any("dense trajectory" in f for f in failures)

    def test_missing_scale_fails(self):
        fresh = sweep_report([sweep_row(0.1, 1000, 0.5)])
        failures, _ = compare_scale_reports(fresh, self.baseline())
        assert any("missing from run" in f for f in failures)

    def test_new_scale_is_reported_not_failed(self):
        fresh = sweep_report(
            [sweep_row(0.1, 1000, 0.5), sweep_row(0.2, 2000, 1.6),
             sweep_row(0.4, 4000, 5.0)]
        )
        failures, lines = compare_scale_reports(fresh, self.baseline())
        assert failures == []
        assert any("no baseline" in line for line in lines)


class TestAnnotateSpeedups:
    def test_adds_ratios(self):
        baseline = report([("pipeline.cut", 1.0)])
        fresh = report([("pipeline.cut", 0.2)])
        annotate_speedups(fresh, baseline)
        assert fresh["pipeline"]["stages"][0]["speedup_vs_baseline"] == 5.0

    def test_none_baseline_is_noop(self):
        fresh = report([("pipeline.cut", 0.2)])
        annotate_speedups(fresh, None)
        assert "speedup_vs_baseline" not in fresh["pipeline"]["stages"][0]
