"""Unit tests for the bench regression gate (no pipeline runs)."""

from repro.bench import annotate_speedups, compare_reports


def report(stages, summary=None):
    return {
        "pipeline": {
            "stages": [
                {"stage": name, "wall_s": wall} for name, wall in stages
            ]
        },
        "summary": summary if summary is not None else {"ad_campaigns": 5},
    }


class TestCompareReports:
    def test_clean_run_passes(self):
        baseline = report([("pipeline.cut", 1.0), ("pipeline.distances", 0.5)])
        fresh = report([("pipeline.cut", 1.1), ("pipeline.distances", 0.4)])
        failures, lines = compare_reports(fresh, baseline, tolerance=0.25)
        assert failures == []
        assert len(lines) == 2

    def test_regression_fails(self):
        baseline = report([("pipeline.cut", 1.0)])
        fresh = report([("pipeline.cut", 1.3)])
        failures, _ = compare_reports(fresh, baseline, tolerance=0.25)
        assert len(failures) == 1
        assert "pipeline.cut" in failures[0]

    def test_noise_floor_skips_tiny_stages(self):
        baseline = report([("pipeline.features", 0.01)])
        fresh = report([("pipeline.features", 0.04)])  # 4x, but tiny
        failures, lines = compare_reports(
            fresh, baseline, tolerance=0.25, min_wall=0.05
        )
        assert failures == []
        assert "not gated" in lines[0]

    def test_missing_stage_fails(self):
        baseline = report([("pipeline.cut", 1.0), ("pipeline.gone", 1.0)])
        fresh = report([("pipeline.cut", 1.0)])
        failures, _ = compare_reports(fresh, baseline)
        assert any("pipeline.gone" in f for f in failures)

    def test_summary_drift_fails(self):
        baseline = report([("pipeline.cut", 1.0)], summary={"ad_campaigns": 5})
        fresh = report([("pipeline.cut", 1.0)], summary={"ad_campaigns": 6})
        failures, _ = compare_reports(fresh, baseline)
        assert any("determinism" in f for f in failures)
        assert any("ad_campaigns" in f for f in failures)

    def test_new_stage_is_reported_not_failed(self):
        baseline = report([("pipeline.cut", 1.0)])
        fresh = report([("pipeline.cut", 1.0), ("pipeline.new", 9.0)])
        failures, lines = compare_reports(fresh, baseline)
        assert failures == []
        assert any("no baseline" in line for line in lines)


class TestAnnotateSpeedups:
    def test_adds_ratios(self):
        baseline = report([("pipeline.cut", 1.0)])
        fresh = report([("pipeline.cut", 0.2)])
        annotate_speedups(fresh, baseline)
        assert fresh["pipeline"]["stages"][0]["speedup_vs_baseline"] == 5.0

    def test_none_baseline_is_noop(self):
        fresh = report([("pipeline.cut", 0.2)])
        annotate_speedups(fresh, None)
        assert "speedup_vs_baseline" not in fresh["pipeline"]["stages"][0]
