"""Every ``IncrementalDriftError`` refusal path, on synthetic inputs.

The incremental path's contract is *never silently approximate*: any
base state it cannot verify, any batch it cannot absorb exactly, and any
artifact it does not maintain must raise the typed error.  Each test
tampers one precondition and asserts both the refusal and (via the
message) that the right check fired.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.textsim import SoftCosineModel
from repro.incremental import (
    IncrementalDriftError,
    IncrementalMiner,
    IncrementalResult,
)
from repro.serve import MinedSnapshot


def _construct(base_result, **overrides):
    config = overrides.pop("config", base_result.config)
    kwargs = dict(
        records=base_result.records,
        labels=np.asarray(base_result.labels),
        cut_threshold=base_result.cut_threshold,
        text_model=base_result.text_model,
    )
    kwargs.update(overrides)
    return IncrementalMiner(config, **kwargs)


def test_from_result_refuses_missing_text_model(base_result):
    stripped = dataclasses.replace(base_result, text_model=None)
    with pytest.raises(IncrementalDriftError, match="no fitted text model"):
        IncrementalMiner.from_result(stripped)


def test_refuses_empty_base(base_result):
    with pytest.raises(IncrementalDriftError, match="no records"):
        _construct(
            base_result, records=[], labels=np.empty(0, dtype=np.int64)
        )


def test_refuses_misaligned_labels(base_result):
    with pytest.raises(IncrementalDriftError, match="shape"):
        _construct(
            base_result, labels=np.asarray(base_result.labels)[:-1]
        )


def test_refuses_invalid_base_record(base_result):
    records = list(base_result.records)
    records[0] = dataclasses.replace(records[0], valid=False)
    with pytest.raises(IncrementalDriftError, match="invalid records"):
        _construct(base_result, records=records)


def test_refuses_unfitted_model(base_result):
    with pytest.raises(IncrementalDriftError, match="unfitted"):
        _construct(base_result, text_model=SoftCosineModel())


def test_refuses_sparse_cut_at_blocking_bound(sparse_base_result):
    bound = sparse_base_result.config.blocking_bound
    with pytest.raises(IncrementalDriftError, match="blocking"):
        _construct(
            sparse_base_result,
            config=sparse_base_result.config,
            cut_threshold=bound,
        )


def test_refuses_empty_batch(base_result):
    miner = IncrementalMiner.from_result(base_result)
    with pytest.raises(ValueError, match="non-empty"):
        miner.absorb([])


def test_refuses_invalid_batch_record(base_result, batch_records):
    miner = IncrementalMiner.from_result(base_result)
    bad = [dataclasses.replace(batch_records[0], valid=False)]
    with pytest.raises(IncrementalDriftError, match="invalid"):
        miner.absorb(bad)


def test_refuses_wpn_id_already_in_corpus(base_result):
    miner = IncrementalMiner.from_result(base_result)
    with pytest.raises(IncrementalDriftError, match="duplicate wpn id"):
        miner.absorb([base_result.records[0]])


def test_refuses_duplicate_within_batch(base_result, batch_records):
    miner = IncrementalMiner.from_result(base_result)
    with pytest.raises(IncrementalDriftError, match="duplicate wpn id"):
        miner.absorb([batch_records[0], batch_records[0]])


@pytest.mark.parametrize(
    "artifact", ["distances", "linkage", "silhouette"]
)
def test_result_refuses_dendrogram_artifacts(
    base_result, batch_records, artifact
):
    miner = IncrementalMiner.from_result(base_result)
    miner.absorb(batch_records)
    result = miner.result()
    assert isinstance(result, IncrementalResult)
    with pytest.raises(IncrementalDriftError, match="compact"):
        getattr(result, artifact)


def test_from_snapshot_refuses_length_mismatch(base_result):
    snapshot = MinedSnapshot.from_result(base_result)
    with pytest.raises(IncrementalDriftError, match="exact base corpus"):
        IncrementalMiner.from_snapshot(snapshot, base_result.records[:-1])


def test_from_snapshot_refuses_reordered_records(base_result):
    snapshot = MinedSnapshot.from_result(base_result)
    shuffled = [
        base_result.records[1],
        base_result.records[0],
        *base_result.records[2:],
    ]
    with pytest.raises(IncrementalDriftError, match="corpus order"):
        IncrementalMiner.from_snapshot(snapshot, shuffled)


def test_from_snapshot_refuses_drifted_landing_url(base_result):
    snapshot = MinedSnapshot.from_result(base_result)
    records = list(base_result.records)
    records[0] = dataclasses.replace(
        records[0], landing_url="https://drifted.example/landing"
    )
    with pytest.raises(IncrementalDriftError, match="landing URL"):
        IncrementalMiner.from_snapshot(snapshot, records)
