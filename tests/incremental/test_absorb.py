"""Absorption behavior: accounting, assignment semantics, invariances.

The bit-identity convergence contract lives in ``test_convergence``;
here the per-batch mechanics are pinned: report arithmetic, label
assignment vs singleton opening, sparse/dense and worker invariance,
snapshot round-trips, and the ``incremental.*`` observability spans.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.incremental import IncrementalMiner
from repro.obs import Tracer
from repro.serve import MinedSnapshot


@pytest.fixture()
def miner(base_result):
    return IncrementalMiner.from_result(base_result)


def test_report_accounting(miner, base_records, batch_records):
    report = miner.absorb(batch_records)
    assert report.batch_size == len(batch_records)
    assert report.assigned + report.opened == report.batch_size
    assert report.corpus_size == len(base_records) + len(batch_records)
    assert report.deferred_to_compaction == len(batch_records)
    assert miner.n_records == report.corpus_size
    assert miner.absorbed_since_compaction == len(batch_records)


def test_assigned_join_existing_clusters_opened_are_fresh_singletons(
    miner, base_result, batch_records
):
    report = miner.absorb(batch_records)
    base_labels = set(int(label) for label in base_result.labels)
    new_labels = miner.result().labels[-len(batch_records):]
    joined = [int(v) for v in new_labels if int(v) in base_labels]
    fresh = [int(v) for v in new_labels if int(v) not in base_labels]
    assert len(joined) == report.assigned
    assert len(fresh) == report.opened
    # Batch records are never paired with each other: every opened
    # cluster is a singleton with its own fresh label.
    assert len(set(fresh)) == len(fresh)
    assert all(v > max(base_labels) for v in fresh)


def test_absorb_is_deterministic(base_result, batch_records):
    first = IncrementalMiner.from_result(base_result)
    second = IncrementalMiner.from_result(base_result)
    report_a = first.absorb(batch_records)
    report_b = second.absorb(batch_records)
    assert report_a == report_b
    assert np.array_equal(first.result().labels, second.result().labels)


def test_sparse_assignment_matches_dense(
    base_result, sparse_base_result, batch_records
):
    dense = IncrementalMiner.from_result(base_result)
    blocked = IncrementalMiner.from_result(sparse_base_result)
    dense_report = dense.absorb(batch_records)
    blocked_report = blocked.absorb(batch_records)
    assert (dense_report.assigned, dense_report.opened) == (
        blocked_report.assigned,
        blocked_report.opened,
    )
    assert np.array_equal(dense.result().labels, blocked.result().labels)
    # The blocked path actually pruned: it enumerated candidates and
    # scored no more pairs than the dense all-pairs kernel would.
    assert 0 < blocked_report.n_scored <= blocked_report.n_candidates
    n_dense_pairs = len(batch_records) * len(base_result.records)
    assert blocked_report.n_scored < n_dense_pairs


@pytest.mark.parametrize("workers", [2, 4])
def test_worker_count_is_invisible(base_result, batch_records, workers):
    serial = IncrementalMiner.from_result(base_result)
    config = dataclasses.replace(base_result.config, workers=workers)
    parallel = IncrementalMiner(
        config,
        records=base_result.records,
        labels=np.asarray(base_result.labels),
        cut_threshold=base_result.cut_threshold,
        text_model=base_result.text_model,
    )
    assert serial.absorb(batch_records) == parallel.absorb(batch_records)
    assert np.array_equal(serial.result().labels, parallel.result().labels)


def test_result_exports_to_snapshot(miner, batch_records):
    miner.absorb(batch_records)
    snapshot = MinedSnapshot.from_result(miner.result())
    assert snapshot.n_records == miner.n_records
    assert snapshot.hash == MinedSnapshot.from_result(miner.result()).hash


def test_from_snapshot_matches_from_result(base_result, batch_records):
    snapshot = MinedSnapshot.from_result(base_result)
    live = IncrementalMiner.from_result(base_result)
    restored = IncrementalMiner.from_snapshot(snapshot, base_result.records)
    assert live.absorb(batch_records) == restored.absorb(batch_records)
    assert np.array_equal(live.result().labels, restored.result().labels)


def test_absorb_emits_spans_and_gauges(base_result, batch_records):
    tracer = Tracer()
    miner = IncrementalMiner.from_result(base_result, tracer=tracer)
    report = miner.absorb(batch_records)
    tracer.finish()
    absorb = tracer.root.find("incremental.absorb")
    assert absorb is not None
    assert absorb.metrics["batch"] == report.batch_size
    assert absorb.metrics["assigned"] == report.assigned
    assert absorb.metrics["opened"] == report.opened
    assert absorb.metrics["corpus"] == report.corpus_size
    assert (
        absorb.metrics["deferred_to_compaction"]
        == report.deferred_to_compaction
    )
    assign = tracer.root.find("incremental.assign")
    assert assign is not None and assign.metrics["workers"] == 1
    assert tracer.root.find("incremental.verdicts") is not None


def test_summary_counts_the_union(miner, base_records, batch_records):
    miner.absorb(batch_records)
    summary = miner.result().summary()
    assert summary["wpns_clustered"] == len(base_records) + len(batch_records)


def test_absorb_after_compact(miner, batch_records):
    miner.absorb(batch_records[: len(batch_records) // 2])
    compacted = miner.compact()
    assert miner.absorbed_since_compaction == 0
    assert len(compacted.records) == miner.n_records
    report = miner.absorb(batch_records[len(batch_records) // 2:])
    assert report.deferred_to_compaction == report.batch_size
