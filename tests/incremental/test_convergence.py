"""The convergence contract: absorb-then-compact == from-scratch, bitwise.

At scale 0.125, the incremental path absorbs the last 10% of the corpus
in two batches and then compacts; the compacted state must be
``_checksum``-identical to ``PushAdMiner.run`` over the same union — for
dense and blocked-sparse configurations and any worker count.  Under
``REPRO_DETSAN=1`` the same assertions run with filesystem enumeration
shuffled and tile submission permuted, so the contract is fuzzed, not
just sampled.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import paper_scenario, run_full_crawl
from repro.analysis.sanitizer import _checksum
from repro.core.pipeline import MinerConfig, PushAdMiner
from repro.incremental import IncrementalMiner

SEED = 7
SCALE = 0.125


def _config(storage: str, workers: int) -> MinerConfig:
    if storage == "sparse":
        return MinerConfig(
            seed=SEED, storage="sparse", blocking="url", workers=workers
        )
    return MinerConfig(seed=SEED, workers=workers)


@pytest.fixture(scope="module")
def union_records():
    config = paper_scenario(seed=SEED, scale=SCALE)
    return run_full_crawl(config=config).valid_records


def _canonical_checksum(result):
    """Result checksum with the worker count normalized out.

    ``_checksum`` pickles the whole result, and the result embeds its
    :class:`MinerConfig` — whose ``workers`` field is the one thing that
    legitimately differs between a serial and a parallel run.  Every
    computed artifact (labels, distances, verdicts, model) must still
    digest identically, so the config is canonicalized to ``workers=1``
    on both sides before hashing.
    """
    config = dataclasses.replace(result.config, workers=1)
    return _checksum(dataclasses.replace(result, config=config))


@pytest.fixture(scope="module")
def expected_checksums(union_records):
    """From-scratch batch-mine checksum of the union, per storage."""
    return {
        storage: _canonical_checksum(
            PushAdMiner(_config(storage, 1)).run(union_records)
        )
        for storage in ("dense", "sparse")
    }


def _absorb_then_compact(union_records, storage, workers):
    n_tail = len(union_records) // 10
    base, tail = union_records[:-n_tail], union_records[-n_tail:]
    config = _config(storage, workers)
    base_result = PushAdMiner(config).run(base)
    miner = IncrementalMiner.from_result(base_result)
    half = len(tail) // 2
    miner.absorb(tail[:half])
    miner.absorb(tail[half:])
    assert miner.absorbed_since_compaction == n_tail
    compacted = miner.compact()
    assert miner.absorbed_since_compaction == 0
    return miner, compacted


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_sparse_compaction_is_bitwise_identical(
    union_records, expected_checksums, workers
):
    miner, compacted = _absorb_then_compact(union_records, "sparse", workers)
    assert _canonical_checksum(compacted) == expected_checksums["sparse"]
    # The adopted base state is the compacted one, bit for bit.
    assert np.array_equal(miner.result().labels, np.asarray(compacted.labels))
    assert miner.result().cut_threshold == compacted.cut_threshold


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_dense_compaction_is_bitwise_identical(
    union_records, expected_checksums, workers
):
    _, compacted = _absorb_then_compact(union_records, "dense", workers)
    assert _canonical_checksum(compacted) == expected_checksums["dense"]


def test_storage_modes_agree_after_compaction(union_records):
    _, dense = _absorb_then_compact(union_records, "dense", 1)
    _, blocked = _absorb_then_compact(union_records, "sparse", 1)
    assert np.array_equal(np.asarray(dense.labels), np.asarray(blocked.labels))
    assert dense.cut_threshold == blocked.cut_threshold
    assert dense.summary() == blocked.summary()


def test_compacted_summary_matches_incremental_view(union_records):
    miner, compacted = _absorb_then_compact(union_records, "sparse", 2)
    assert miner.result().summary() == compacted.summary()
