"""Incremental-suite fixtures: a base mine over most of the shared corpus.

The shared ``small_dataset`` (seed 8, scale 0.03) is split once: the last
``HOLDOUT`` valid records form the append batch, the rest are mined into
the base state every test adopts.  Mining is the expensive part, so the
base result is module-agnostic and session-scoped.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import MinerConfig, PushAdMiner

HOLDOUT = 24


@pytest.fixture(scope="session")
def split(small_dataset):
    valid = small_dataset.valid_records
    assert len(valid) > 4 * HOLDOUT
    return valid[:-HOLDOUT], valid[-HOLDOUT:]


@pytest.fixture(scope="session")
def base_records(split):
    return split[0]


@pytest.fixture(scope="session")
def batch_records(split):
    return split[1]


@pytest.fixture(scope="session")
def base_result(base_records, small_dataset):
    config = MinerConfig(seed=small_dataset.config.seed)
    return PushAdMiner(config).run(base_records)


@pytest.fixture(scope="session")
def sparse_base_result(base_records, small_dataset):
    config = MinerConfig(
        seed=small_dataset.config.seed, storage="sparse", blocking="url"
    )
    return PushAdMiner(config).run(base_records)
