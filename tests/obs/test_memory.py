"""Peak-memory meters: the null default and the tracemalloc meter."""

import numpy as np

from repro.obs import (
    MemoryMeter,
    NullMemoryMeter,
    TracemallocMeter,
    Tracer,
)


class TestNullMemoryMeter:
    def test_reading_stays_none(self):
        with NullMemoryMeter().measure() as reading:
            _ = bytearray(1 << 20)
        assert reading.peak_bytes is None

    def test_name_and_protocol(self):
        meter = NullMemoryMeter()
        assert meter.name == "null"
        assert isinstance(meter, MemoryMeter)

    def test_tracer_default(self):
        assert isinstance(Tracer().memory, NullMemoryMeter)


class TestTracemallocMeter:
    def test_measures_a_known_allocation(self):
        meter = TracemallocMeter()
        with meter.measure() as reading:
            block = np.zeros(1 << 19)  # 4 MiB of float64
            del block
        assert reading.peak_bytes is not None
        assert reading.peak_bytes >= (1 << 19) * 8

    def test_sequential_regions_reset_the_peak(self):
        meter = TracemallocMeter()
        with meter.measure() as big:
            block = np.zeros(1 << 19)
            del block
        with meter.measure() as small:
            _ = bytearray(1 << 10)
        assert small.peak_bytes is not None
        assert small.peak_bytes < big.peak_bytes

    def test_reading_is_none_until_exit(self):
        meter = TracemallocMeter()
        with meter.measure() as reading:
            assert reading.peak_bytes is None
        assert reading.peak_bytes is not None

    def test_gauges_peak_bytes_on_spans(self):
        tracer = Tracer(memory=TracemallocMeter())
        with tracer.span("stage") as span:
            with tracer.memory.measure() as mem:
                block = np.zeros(1 << 16)
                del block
            if mem.peak_bytes is not None:
                span.gauge("peak_bytes", mem.peak_bytes)
        assert tracer.root.find("stage").metrics["peak_bytes"] >= (1 << 16) * 8
