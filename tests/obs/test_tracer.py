"""Tests for the span-tree tracer."""

import pytest

from repro.obs import NullClock, PerfClock, Span, Tracer


class TestSpan:
    def test_count_accumulates(self):
        span = Span(name="s")
        span.count("hits")
        span.count("hits", 4)
        assert span.metrics["hits"] == 5

    def test_gauge_last_write_wins(self):
        span = Span(name="s")
        span.gauge("size", 10)
        span.gauge("size", 3)
        assert span.metrics["size"] == 3

    def test_duration_open_span_is_zero(self):
        assert Span(name="s", start=5.0).duration == 0.0

    def test_duration_closed(self):
        assert Span(name="s", start=1.0, end=3.5).duration == 2.5

    def test_walk_depth_first(self):
        root = Span(name="root")
        a = Span(name="a")
        b = Span(name="b")
        a.children.append(Span(name="a1"))
        root.children.extend([a, b])
        assert [s.name for s in root.walk()] == ["root", "a", "a1", "b"]

    def test_find(self):
        root = Span(name="root")
        root.children.append(Span(name="leaf"))
        assert root.find("leaf") is root.children[0]
        assert root.find("missing") is None

    def test_to_dict_sorted_metrics(self):
        span = Span(name="s", start=0.0, end=1.0)
        span.gauge("zeta", 1)
        span.gauge("alpha", 2)
        payload = span.to_dict()
        assert list(payload["metrics"]) == ["alpha", "zeta"]
        assert payload["duration_s"] == 1.0


class TestTracer:
    def test_defaults_to_null_clock(self):
        assert isinstance(Tracer().clock, NullClock)

    def test_nesting(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                assert tracer.current.name == "inner"
            assert tracer.current.name == "outer"
        assert tracer.current is tracer.root
        outer = tracer.root.children[0]
        assert outer.name == "outer"
        assert outer.children[0].name == "inner"

    def test_span_closed_on_exception(self):
        tracer = Tracer(clock=PerfClock())
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        span = tracer.root.children[0]
        assert span.end is not None
        assert tracer.current is tracer.root

    def test_null_clock_timestamps_all_zero(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        tracer.finish()
        for span in tracer.root.walk():
            assert span.start == 0.0 and span.end == 0.0

    def test_perf_clock_durations_positive(self):
        tracer = Tracer(clock=PerfClock())
        with tracer.span("a"):
            sum(range(1000))
        tracer.finish()
        assert tracer.root.children[0].duration >= 0.0
        assert tracer.root.duration >= tracer.root.children[0].duration

    def test_finish_idempotent(self):
        tracer = Tracer(clock=PerfClock())
        first = tracer.finish().end
        assert tracer.finish().end == first

    def test_yielded_span_accepts_metrics(self):
        tracer = Tracer()
        with tracer.span("stage") as span:
            span.gauge("records", 7)
            span.count("retries")
        assert tracer.root.children[0].metrics == {"records": 7, "retries": 1}
