"""Tests for trace reporters and end-to-end trace determinism."""

import json

from repro.core.pipeline import PushAdMiner
from repro.crawler.harvest import run_full_crawl
from repro.obs import (
    TRACE_SCHEMA,
    Tracer,
    format_trace,
    trace_to_dict,
    trace_to_json,
)
from repro.webenv.scenario import paper_scenario


def _sample_tracer():
    tracer = Tracer()
    with tracer.span("a") as span:
        span.gauge("records", 3)
        with tracer.span("b") as inner:
            inner.count("hits", 2)
    return tracer


class TestTraceToDict:
    def test_schema_and_clock(self):
        payload = trace_to_dict(_sample_tracer())
        assert payload["schema"] == TRACE_SCHEMA
        assert payload["clock"] == "null"

    def test_tree_shape(self):
        payload = trace_to_dict(_sample_tracer())
        root = payload["trace"]
        assert root["name"] == "trace"
        a = root["children"][0]
        assert a["metrics"] == {"records": 3}
        assert a["children"][0]["metrics"] == {"hits": 2}

    def test_finishes_the_trace(self):
        tracer = _sample_tracer()
        trace_to_dict(tracer)
        assert tracer.root.end is not None


class TestTraceToJson:
    def test_newline_terminated_valid_json(self):
        text = trace_to_json(_sample_tracer())
        assert text.endswith("\n")
        assert json.loads(text)["schema"] == TRACE_SCHEMA

    def test_identical_for_identical_traces(self):
        assert trace_to_json(_sample_tracer()) == trace_to_json(_sample_tracer())


class TestFormatTrace:
    def test_contains_names_and_metrics(self):
        text = format_trace(_sample_tracer())
        assert "clock=null" in text
        assert "records=3" in text
        assert "hits=2" in text

    def test_indentation_reflects_depth(self):
        lines = format_trace(_sample_tracer()).splitlines()
        assert lines[1].startswith("  trace")
        assert lines[2].startswith("    a")
        assert lines[3].startswith("      b")


def _traced_run_json(seed: float, scale: float) -> str:
    tracer = Tracer()
    config = paper_scenario(seed=seed, scale=scale)
    dataset = run_full_crawl(config=config, tracer=tracer)
    PushAdMiner.for_dataset(dataset, tracer=tracer).run(dataset.valid_records)
    return trace_to_json(tracer)


class TestTraceDeterminism:
    def test_full_run_trace_bit_identical(self):
        """Same seed + NullClock => byte-identical trace JSON (tier-1)."""
        first = _traced_run_json(seed=11, scale=0.02)
        second = _traced_run_json(seed=11, scale=0.02)
        assert first == second

    def test_trace_covers_crawl_and_pipeline(self):
        payload = json.loads(_traced_run_json(seed=11, scale=0.02))
        names = set()

        def collect(node):
            names.add(node["name"])
            for child in node["children"]:
                collect(child)

        collect(payload["trace"])
        assert {"crawl", "crawl.desktop", "webenv.generate",
                "pipeline", "pipeline.distances", "pipeline.cut"} <= names
