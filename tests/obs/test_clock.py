"""Tests for the injectable clock protocol."""

import time

from repro.obs import Clock, NullClock, PerfClock


class TestNullClock:
    def test_always_zero(self):
        clock = NullClock()
        assert clock.now() == 0.0
        assert clock.now() == 0.0

    def test_name(self):
        assert NullClock().name == "null"

    def test_satisfies_protocol(self):
        assert isinstance(NullClock(), Clock)


class TestPerfClock:
    def test_starts_near_zero(self):
        clock = PerfClock()
        assert 0.0 <= clock.now() < 1.0

    def test_monotonic(self):
        clock = PerfClock()
        a = clock.now()
        time.sleep(0.002)
        b = clock.now()
        assert b > a

    def test_name(self):
        assert PerfClock().name == "perf"

    def test_satisfies_protocol(self):
        assert isinstance(PerfClock(), Clock)

    def test_independent_epochs(self):
        first = PerfClock()
        time.sleep(0.002)
        second = PerfClock()
        assert second.now() < first.now()
