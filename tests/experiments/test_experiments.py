"""Tests for the stand-alone measurement experiments."""

import pytest

from repro.experiments import (
    run_blocklist_lag,
    run_double_permission_check,
    run_latency_pilot,
    run_quiet_ui_experiment,
    run_revisit_experiment,
)


class TestBlocklistLag:
    def test_coverage_grows(self, small_dataset):
        result = run_blocklist_lag(small_dataset)
        assert result.vt_flagged_initial <= result.vt_flagged_late
        # "<1%" in the paper; a 3%-scale corpus has only ~500 URLs, so one
        # flag moves the rate by 0.2 points — allow small-sample slack.
        assert result.vt_initial_pct < 3.0
        assert 5.0 < result.vt_late_pct < 30.0  # paper: 11.31%
        assert result.gsb_late_pct < 3.0        # GSB stayed ~1%

    def test_gsb_time_invariant(self, small_dataset):
        result = run_blocklist_lag(small_dataset)
        assert result.gsb_flagged_initial == result.gsb_flagged_late

    def test_vt_recall_bounded(self, small_dataset):
        result = run_blocklist_lag(small_dataset)
        assert 0.0 < result.vt_recall_late < 1.0
        assert result.truly_malicious_urls <= result.total_urls


class TestRevisit:
    @pytest.fixture(scope="class")
    def revisit(self, small_dataset):
        return run_revisit_experiment(small_dataset, n_sites=100)

    def test_counts_sane(self, revisit):
        assert revisit.revisited_sites <= 100
        assert revisit.active_sites <= revisit.revisited_sites
        assert revisit.valid_notifications <= revisit.notifications

    def test_churn_reduces_activity(self, revisit, small_dataset):
        # Survival-rate churn: far fewer active sites than in the study.
        active_fraction = revisit.active_sites / revisit.revisited_sites
        assert active_fraction < small_dataset.config.active_notifier_rate

    def test_fresh_urls_evade_vt(self, revisit):
        # Fresh campaigns on fresh URLs: early-scan VT catches almost none.
        assert revisit.vt_flagged_urls <= max(
            2, int(0.1 * revisit.valid_notifications)
        )

    def test_ads_and_malicious_found(self, revisit):
        if revisit.pipeline is not None:
            assert revisit.wpn_ads > 0
            assert revisit.malicious_ads <= revisit.wpn_ads

    def test_original_config_restored(self, small_dataset):
        days_before = small_dataset.ecosystem.config.study_days
        run_revisit_experiment(small_dataset, n_sites=20)
        assert small_dataset.ecosystem.config.study_days == days_before


class TestDoublePermission:
    def test_adoption_rate_matches(self, small_dataset):
        result = run_double_permission_check(small_dataset, n_sites=120,
                                             adoption_rate=0.25)
        fraction = result.switched_fraction
        assert 0.1 < fraction < 0.45  # paper: 49/200 ~ 1/4

    def test_crawler_defeats_double_permission(self, small_dataset):
        result = run_double_permission_check(small_dataset, n_sites=60)
        assert result.prompts_still_reachable == result.rechecked_sites

    def test_deterministic(self, small_dataset):
        a = run_double_permission_check(small_dataset, n_sites=50)
        b = run_double_permission_check(small_dataset, n_sites=50)
        assert a.switched_to_double == b.switched_to_double


class TestQuietUi:
    def test_blocks_nothing_without_crowd_data(self, small_dataset):
        result = run_quiet_ui_experiment(small_dataset, n_sites=80)
        assert result.suppressed_now == 0
        assert result.blocked_none_today

    def test_trained_feature_would_block_some(self, small_dataset):
        result = run_quiet_ui_experiment(small_dataset, n_sites=80)
        assert result.suppressed_if_trained > 0
        assert result.suppressed_if_trained < result.visited_sites


class TestLatencyPilot:
    def test_paper_shape(self, small_ecosystem):
        result = run_latency_pilot(small_ecosystem, n_sites=300)
        assert result.sites_with_notifications > 10
        assert result.within_15min_pct > 90.0  # paper: 98%
        cdf = result.cdf_minutes
        assert cdf[60.0] >= cdf[15.0] >= cdf[5.0]


class TestRealtimeBlocking:
    @pytest.fixture(scope="class")
    def blocking(self, small_dataset):
        from repro.experiments import run_realtime_blocking

        return run_realtime_blocking(small_dataset)

    def test_split_respects_time(self, blocking, small_dataset):
        assert blocking.train_wpns + blocking.deploy_wpns == len(
            small_dataset.valid_records
        )
        assert blocking.train_wpns > 20
        assert blocking.deploy_wpns > 0

    def test_thresholds_trade_recall_for_false_blocks(self, blocking):
        points = blocking.operating_points
        # Raising the threshold never increases either block count.
        for low, high in zip(points, points[1:]):
            assert high.blocked_malicious <= low.blocked_malicious
            assert high.blocked_benign <= low.blocked_benign

    def test_detector_blocks_most_malicious(self, blocking):
        loosest = blocking.operating_points[0]
        assert loosest.block_rate_malicious > 0.6

    def test_budget_selection(self, blocking):
        best = blocking.best_under_false_block_budget(1.0)  # no budget
        assert best is blocking.operating_points[0]
        none = blocking.best_under_false_block_budget(0.0)
        if none is not None:
            assert none.false_block_rate == 0.0

    def test_rejects_unsplittable_data(self, small_dataset):
        from repro.experiments import run_realtime_blocking

        with pytest.raises(ValueError):
            run_realtime_blocking(small_dataset, train_days=10_000.0)
