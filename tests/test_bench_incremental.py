"""repro.bench --incremental: the compare gate's failure modes (unit-level).

The full run (crawl + three timed mining legs) executes in check.sh; here
the gate logic is pinned against synthetic reports, and the committed
``BENCH_incremental.json`` — when present — must itself satisfy the
ceiling it gates.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench import (
    ABSORB_WALL_CEILING,
    INCREMENTAL_SCHEMA,
    MIN_GATED_FULL_WALL,
    compare_incremental_reports,
)


def _report(absorb_s=0.2, full_s=3.5, assigned=53, summary_records=3874):
    return {
        "schema": INCREMENTAL_SCHEMA,
        "scenario": {"seed": 7, "scale": 0.25, "batch_fraction": 0.05},
        "perf": {
            "workers": 1, "tile_size": 512, "storage": "sparse",
            "blocking": "url", "blocking_bound": 0.45,
        },
        "walls": {
            "full_remine_s": full_s,
            "base_mine_s": full_s * 0.95,
            "absorb_s": absorb_s,
            "absorb_over_full": round(absorb_s / full_s, 4),
        },
        "n_base": 3680,
        "n_batch": 194,
        "n_union": 3874,
        "assigned": assigned,
        "opened": 194 - assigned,
        "candidate_pairs": 100000,
        "scored_pairs": 9000,
        "summary": {"wpns_clustered": summary_records, "wpn_ads": 100},
    }


def test_identical_reports_pass():
    failures, lines = compare_incremental_reports(_report(), _report())
    assert failures == []
    assert any("ceiling" in line for line in lines)


def test_ceiling_breach_is_a_hard_failure():
    fresh = _report(absorb_s=1.0)  # 28.6% of the full wall
    failures, _ = compare_incremental_reports(fresh, _report(absorb_s=1.0))
    assert any("re-paying the pipeline" in f for f in failures)


def test_ceiling_not_gated_below_min_full_wall():
    # Same 28.6% ratio, but the full mine is smoke-sized noise.
    small = MIN_GATED_FULL_WALL / 10
    fresh = _report(absorb_s=small * 0.286, full_s=small)
    failures, lines = compare_incremental_reports(
        fresh, _report(absorb_s=small * 0.286, full_s=small)
    )
    assert failures == []
    assert any("not gated" in line for line in lines)


def test_assigned_drift_is_a_determinism_failure():
    failures, _ = compare_incremental_reports(
        _report(assigned=52), _report()
    )
    assert any(
        "assigned" in f and "determinism" in f for f in failures
    )
    assert any("opened" in f for f in failures)


def test_summary_drift_is_a_determinism_failure():
    failures, _ = compare_incremental_reports(
        _report(summary_records=9999), _report()
    )
    assert any("union summary drifted" in f for f in failures)


def test_absorb_wall_regression_fails():
    failures, lines = compare_incremental_reports(
        _report(absorb_s=0.45), _report(absorb_s=0.2)
    )
    assert any("regression" in f.lower() for f in failures)
    assert any("REGRESSION" in line for line in lines)


def test_absorb_wall_within_tolerance_passes():
    failures, _ = compare_incremental_reports(
        _report(absorb_s=0.28), _report(absorb_s=0.2)
    )
    assert failures == []


def test_committed_baseline_respects_its_own_gate():
    path = Path(__file__).resolve().parents[1] / "BENCH_incremental.json"
    if not path.exists():
        return  # the artifact ships with the repo, but stay lenient
    payload = json.loads(path.read_text())
    assert payload["schema"] == INCREMENTAL_SCHEMA
    walls = payload["walls"]
    assert walls["full_remine_s"] >= MIN_GATED_FULL_WALL
    assert walls["absorb_over_full"] <= ABSORB_WALL_CEILING
    assert payload["assigned"] + payload["opened"] == payload["n_batch"]
    assert payload["n_base"] + payload["n_batch"] == payload["n_union"]
