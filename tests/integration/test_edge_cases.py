"""Failure injection and edge cases across the whole stack."""

from dataclasses import replace

import pytest

from repro import PushAdMiner, paper_scenario, run_full_crawl
from repro.core.pipeline import PushAdMiner as Miner
from repro.webenv.generator import generate_ecosystem
from repro.webenv.scenario import ScenarioConfig


class TestDegenerateWorlds:
    def test_silent_world_yields_no_records(self):
        config = replace(
            paper_scenario(seed=1, scale=0.01), active_notifier_rate=0.0
        )
        dataset = run_full_crawl(config=config)
        assert dataset.records == []
        with pytest.raises(ValueError):
            PushAdMiner.for_dataset(dataset).run(dataset.valid_records)

    def test_all_benign_world(self):
        config = replace(
            paper_scenario(seed=2, scale=0.02), n_malicious_operations=0
        )
        dataset = run_full_crawl(config=config)
        assert not any(r.truth.malicious for r in dataset.records)
        result = PushAdMiner.for_dataset(dataset).run(dataset.valid_records)
        assert result.summary()["malicious_ads"] == 0
        assert result.summary()["malicious_campaigns"] == 0

    def test_tiny_scale_world_still_runs(self):
        dataset = run_full_crawl(config=paper_scenario(seed=3, scale=0.005))
        if dataset.valid_records:
            result = PushAdMiner.for_dataset(dataset).run(dataset.valid_records)
            assert result.summary()["wpns_clustered"] == len(dataset.valid_records)

    def test_generator_with_zero_benign_campaigns(self):
        config = replace(
            paper_scenario(seed=4, scale=0.01), n_benign_ad_campaigns=0
        )
        ecosystem = generate_ecosystem(config)
        # The coverage guarantee still gives every active network something.
        for name, spec in ecosystem.networks.items():
            if spec.paper_nprs > 0:
                assert ecosystem.campaigns_by_network.get(name)


class TestBlocklistExtremes:
    @pytest.fixture(scope="class")
    def dataset(self):
        return run_full_crawl(config=paper_scenario(seed=5, scale=0.02))

    def test_blind_blocklists_still_find_duplicate_ads(self, dataset):
        miner = Miner.for_dataset(
            dataset, vt_early_rate=0.0, vt_late_rate=0.0, gsb_rate=0.0,
            vt_fp_rate=0.0,
        )
        result = miner.run(dataset.valid_records)
        assert not result.labeling.known_malicious_ids
        assert not result.labeling.malicious_cluster_ids
        # The duplicate-ads rule alone still surfaces suspicious clusters,
        # and manual verification still confirms some malicious ads.
        assert result.suspicion.suspicious_meta_ids
        assert result.suspicion.confirmed_malicious_ids

    def test_perfect_blocklists_bound_the_pipeline(self, dataset):
        miner = Miner.for_dataset(
            dataset, vt_early_rate=1.0, vt_late_rate=1.0, vt_fp_rate=0.0,
        )
        result = miner.run(dataset.valid_records)
        truly = {r.wpn_id for r in result.records if r.truth.malicious}
        known = result.labeling.known_malicious_ids
        # Everything truly malicious is flagged (modulo the oracle's
        # unconfirmable slice).
        assert len(known) >= 0.95 * len(truly)
        # And nothing benign sneaks in.
        benign = {r.wpn_id for r in result.records if not r.truth.malicious}
        assert not (known & benign)

    def test_heavy_fp_blocklist_is_curbed_by_manual_pass(self, dataset):
        miner = Miner.for_dataset(dataset, vt_fp_rate=0.3)
        result = miner.run(dataset.valid_records)
        benign = {r.wpn_id for r in result.records if not r.truth.malicious}
        # Plenty of FP candidates...
        assert result.labeling.flagged_candidate_ids & benign
        # ...but the manual pass keeps them out of the malicious label set.
        assert not (result.labeling.known_malicious_ids & benign)


class TestPipelineOverrides:
    def test_all_singleton_cut(self, small_dataset):
        miner = Miner.for_dataset(small_dataset, cut_threshold=-1.0)
        records = small_dataset.valid_records[:120]
        result = miner.run(records)
        # Nothing merges below every height: every cluster is a singleton
        # except exact-duplicate distance-0 pairs (height 0 <= -1 is false,
        # so truly everything is singleton).
        assert all(c.is_singleton for c in result.clusters)
        assert not result.campaign_cluster_ids
        # Meta clustering still groups singletons by shared domains.
        assert len(result.metas) < len(result.clusters)

    def test_single_cluster_cut(self, small_dataset):
        miner = Miner.for_dataset(small_dataset, cut_threshold=10.0)
        records = small_dataset.valid_records[:120]
        result = miner.run(records)
        assert len(result.clusters) == 1
        # One multi-source cluster: everything becomes one "campaign".
        assert result.campaign_cluster_ids == {0}

    def test_early_scan_misses_more(self, small_dataset):
        late = Miner.for_dataset(small_dataset, months_elapsed=1)
        early = Miner.for_dataset(small_dataset, months_elapsed=0)
        records = small_dataset.valid_records
        known_late = late.run(records).labeling.known_malicious_ids
        known_early = early.run(records).labeling.known_malicious_ids
        assert len(known_early) < len(known_late)
        assert known_early <= known_late  # nested coverage
