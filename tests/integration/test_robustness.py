"""Robustness: headline shapes hold across seeds, and rotation shows up
end to end."""

import pytest

from repro import PushAdMiner, paper_scenario, run_full_crawl


@pytest.fixture(scope="module")
def multi_seed_results():
    results = []
    for seed in (21, 22, 23):
        dataset = run_full_crawl(config=paper_scenario(seed=seed, scale=0.03))
        result = PushAdMiner.for_dataset(dataset).run(dataset.valid_records)
        results.append((dataset, result))
    return results


class TestSeedRobustness:
    def test_malicious_share_band(self, multi_seed_results):
        # The 51% headline should hold in a band across seeds, not be a
        # single-seed coincidence.
        shares = [r.summary()["malicious_ad_pct"] for _, r in multi_seed_results]
        assert all(30.0 < s < 75.0 for s in shares), shares

    def test_ads_fraction_band(self, multi_seed_results):
        fractions = [
            r.summary()["wpn_ads"] / r.summary()["wpns_clustered"]
            for _, r in multi_seed_results
        ]
        assert all(0.25 < f < 0.65 for f in fractions), fractions

    def test_campaigns_always_found(self, multi_seed_results):
        for _, result in multi_seed_results:
            summary = result.summary()
            assert summary["ad_campaigns"] > 5
            assert summary["malicious_campaigns"] > 0

    def test_meta_clustering_always_compresses(self, multi_seed_results):
        for _, result in multi_seed_results:
            assert len(result.metas) < len(result.clusters)

    def test_different_seeds_different_worlds(self, multi_seed_results):
        titles = [
            tuple(r.title for r in dataset.records[:20])
            for dataset, _ in multi_seed_results
        ]
        assert len(set(titles)) == len(titles)


class TestRotationEndToEnd:
    def test_rotating_campaigns_rotate_in_the_crawl(self, small_dataset):
        """Records of one rotating campaign drift across domains over time."""
        ecosystem = small_dataset.ecosystem
        rotating_ids = {
            c.campaign_id
            for c in ecosystem.campaigns
            if c.rotation_period_min is not None
        }
        by_campaign = {}
        for record in small_dataset.valid_records:
            if record.truth.campaign_id in rotating_ids:
                by_campaign.setdefault(record.truth.campaign_id, []).append(record)

        # Among well-observed rotating campaigns, at least one exhibits a
        # clear temporal domain shift (early-phase mode != late-phase mode).
        shifted = 0
        observed = 0
        for campaign_id, records in by_campaign.items():
            if len(records) < 8:
                continue
            observed += 1
            records.sort(key=lambda r: r.sent_at_min)
            half = len(records) // 2
            early = [r.landing_etld1 for r in records[:half]]
            late = [r.landing_etld1 for r in records[half:]]
            mode = lambda xs: max(set(xs), key=xs.count)
            if mode(early) != mode(late):
                shifted += 1
        if observed:
            assert shifted > 0

    def test_rotation_preserves_meta_structure(self, small_result):
        """Rotated domains still reconnect through meta-clustering: every
        rotating campaign's domains that appear in the data end up in one
        meta component."""
        from repro.core.metacluster import meta_of_cluster

        index = meta_of_cluster(small_result.metas)
        by_campaign = {}
        for cluster in small_result.clusters:
            for record in cluster.records:
                cid = record.truth.campaign_id
                if cid is not None:
                    by_campaign.setdefault(cid, set()).add(
                        index[cluster.cluster_id].meta_id
                    )
        multi_message = {
            cid: metas for cid, metas in by_campaign.items() if len(metas) > 0
        }
        # The overwhelming majority of campaigns live in a single meta
        # component despite domain rotation.
        single = sum(1 for metas in multi_message.values() if len(metas) == 1)
        assert single / len(multi_message) > 0.8
