"""End-to-end integration: the whole measurement reproduces paper shapes."""

import pytest

from repro import PushAdMiner, paper_scenario, run_full_crawl


class TestPaperShapes:
    """Each test asserts a *shape* from the paper, not an absolute count."""

    def test_seeding_shape(self, small_dataset):
        crawl = small_dataset.summary()
        # Paper: 5,849 NPRs out of 87,622 seed URLs (6.7%).
        npr_rate = crawl["npr_urls"] / crawl["seed_urls"]
        assert 0.04 < npr_rate < 0.10

    def test_clicks_discover_new_urls(self, small_dataset):
        assert small_dataset.summary()["discovered_urls"] > 0

    def test_valid_fraction(self, small_dataset):
        crawl = small_dataset.summary()
        # Paper: 12,262 of 21,541 collected WPNs had a valid landing (57%).
        fraction = crawl["valid_wpns"] / crawl["collected_wpns"]
        assert 0.4 < fraction < 0.75

    def test_singleton_share(self, small_result):
        summary = small_result.summary()
        # Paper: 7,731 singletons of 8,780 clusters over 12,262 WPNs (63%).
        share = summary["singleton_clusters"] / summary["wpns_clustered"]
        assert 0.3 < share < 0.75

    def test_ads_share(self, small_result):
        summary = small_result.summary()
        # Paper: 5,143 ads of 12,262 WPNs (42%).
        share = summary["wpn_ads"] / summary["wpns_clustered"]
        assert 0.30 < share < 0.60

    def test_headline_malicious_share(self, small_result):
        # The paper's headline: 51% of WPN ads are malicious.
        assert 35.0 < small_result.summary()["malicious_ad_pct"] < 70.0

    def test_meta_clustering_extends_ads(self, small_result):
        row1, row2, _ = small_result.stage_rows()
        # Paper: meta clustering grows the ad set from 3,213 to 5,143.
        assert row2.n_wpn_ads > 0
        assert row2.n_wpn_ads < row1.n_wpn_ads * 2

    def test_blocklists_miss_most_malicious(self, small_result):
        total_malicious = len(small_result.malicious_ad_ids)
        known = small_result.stage_rows()[2].n_known_malicious
        # Blocklists find only a fraction; the pipeline roughly doubles it.
        assert known < total_malicious

    def test_majority_campaigns_malicious(self, small_result):
        summary = small_result.summary()
        # Paper: 318 of 572 campaigns malicious (56%).
        share = summary["malicious_campaigns"] / summary["ad_campaigns"]
        assert 0.3 < share < 0.8


class TestDeterminism:
    def test_crawl_is_reproducible(self):
        config = paper_scenario(seed=13, scale=0.015)
        a = run_full_crawl(config=config)
        b = run_full_crawl(config=config)
        assert len(a.records) == len(b.records)
        assert [r.title for r in a.records] == [r.title for r in b.records]
        assert [r.landing_url for r in a.records] == [
            r.landing_url for r in b.records
        ]

    def test_pipeline_is_reproducible(self):
        config = paper_scenario(seed=13, scale=0.015)
        dataset = run_full_crawl(config=config)
        a = PushAdMiner.for_dataset(dataset).run(dataset.valid_records)
        b = PushAdMiner.for_dataset(dataset).run(dataset.valid_records)
        assert a.summary() == b.summary()
        assert a.labels.tolist() == b.labels.tolist()

    def test_different_seeds_differ(self):
        a = run_full_crawl(config=paper_scenario(seed=1, scale=0.015))
        b = run_full_crawl(config=paper_scenario(seed=2, scale=0.015))
        assert [r.title for r in a.records] != [r.title for r in b.records]


class TestScaling:
    def test_counts_scale_with_population(self):
        small = run_full_crawl(config=paper_scenario(seed=5, scale=0.01))
        large = run_full_crawl(config=paper_scenario(seed=5, scale=0.04))
        assert large.summary()["seed_urls"] > 3 * small.summary()["seed_urls"]
        assert large.summary()["collected_wpns"] > small.summary()["collected_wpns"]

    def test_rates_stable_across_scale(self):
        small = run_full_crawl(config=paper_scenario(seed=5, scale=0.02))
        large = run_full_crawl(config=paper_scenario(seed=5, scale=0.05))
        def npr_rate(ds):
            crawl = ds.summary()
            return crawl["npr_urls"] / crawl["seed_urls"]
        assert abs(npr_rate(small) - npr_rate(large)) < 0.02
