"""The paper's motivating example (section 2.1, Figure 1), end to end.

The authors visited a site, granted its notification permission, and later
received "Your payment info has been leaked" — a WPN ad that led to a tech
support scam whose landing URL neither Google Safe Browsing nor VirusTotal
knew. This test reconstructs that exact experience inside the simulation
and checks every beat of the story.
"""

import pytest

from repro.blocklists.base import UrlTruth
from repro.blocklists.gsb import GoogleSafeBrowsingModel
from repro.blocklists.virustotal import VirusTotalModel
from repro.core.verification import ManualVerificationOracle


@pytest.fixture(scope="module")
def tech_support_records(small_dataset):
    return [
        r for r in small_dataset.valid_records
        if r.truth.family_name in ("tech_support", "browser_locker")
    ]


class TestMotivatingExample:
    def test_the_scam_wpn_is_collected(self, tech_support_records):
        assert tech_support_records, "no tech-support scam WPNs collected"
        titles = {r.title for r in tech_support_records}
        # The exact creative from Figure 1 exists in the family templates.
        assert any("leaked" in t.lower() or "warning" in t.lower()
                   or "virus" in t.lower() or "locked" in t.lower()
                   or "breach" in t.lower()
                   for t in titles)

    def test_click_reaches_the_scam_landing_page(self, tech_support_records):
        with_phone = [
            r for r in tech_support_records
            if "support-phone-number" in r.page_signals
        ]
        # The attack monetizes through the phone number on the landing page.
        assert with_phone

    def test_landing_url_initially_unknown_to_blocklists(
        self, tech_support_records, small_dataset
    ):
        config = small_dataset.config
        truth = UrlTruth.from_records(small_dataset.valid_records)
        vt = VirusTotalModel(
            truth, seed=config.seed, early_rate=config.vt_early_rate,
            late_rate=config.vt_late_rate, fp_rate=config.vt_benign_fp_rate,
        )
        gsb = GoogleSafeBrowsingModel(truth, seed=config.seed,
                                      coverage=config.gsb_rate)
        urls = {r.landing_url for r in tech_support_records}
        missed_by_both = [
            u for u in urls
            if not vt.scan(u, months_elapsed=0).flagged
            and not gsb.scan(u).flagged
        ]
        # The authors' surprise: the landing URL was on neither blocklist.
        assert len(missed_by_both) >= 0.8 * len(urls)

    def test_manual_analysis_still_catches_it(self, tech_support_records):
        oracle = ManualVerificationOracle(unconfirmable_rate=0.0)
        record = tech_support_records[0]
        assert oracle.confirm_malicious(record)
        factors = oracle.matched_factors(record)
        assert "scam-page-elements" in factors or \
               "likely-malicious-content" in factors

    def test_desktop_only_targeting(self, tech_support_records):
        # Tech-support scams target desktop users (the paper's family too).
        assert all(r.platform == "desktop" for r in tech_support_records)

    def test_pipeline_ultimately_labels_it(self, small_result):
        confirmed = (
            small_result.labeling.confirmed_malicious_ids
            | small_result.suspicion.confirmed_malicious_ids
        )
        scam_ids = {
            r.wpn_id for r in small_result.records
            if r.truth.family_name in ("tech_support", "browser_locker")
        }
        if scam_ids:
            assert len(confirmed & scam_ids) / len(scam_ids) > 0.6
