"""Blocked kernels vs. brute-force references, and condensed storage."""

import numpy as np
import pytest

from repro.perf import (
    Tile,
    condensed_size,
    condensed_to_square,
    jaccard_distance_tile,
    soft_cosine_similarity_tile,
    square_to_condensed,
)
from repro.util.textproc import jaccard_distance
from repro.core.urlsim import url_membership_operands

from tests.perf.test_plan import tiny_operands


def full_tile(n):
    return Tile(0, n)


class TestKernelCorrectness:
    def test_jaccard_matches_set_arithmetic(self):
        rng = np.random.default_rng(11)
        token_sets = [
            {f"t{j}" for j in rng.choice(20, size=rng.integers(0, 8), replace=False)}
            for _ in range(17)
        ]
        token_sets[3] = set()
        token_sets[9] = set()
        member, sizes, empty = url_membership_operands(token_sets)
        dist = jaccard_distance_tile(member, sizes, empty, full_tile(17))
        for i in range(17):
            for j in range(17):
                expected = jaccard_distance(token_sets[i], token_sets[j])
                assert dist[i, j] == pytest.approx(expected, abs=1e-12)

    def test_jaccard_empty_conventions(self):
        member, sizes, empty = url_membership_operands([set(), {"a"}, set()])
        dist = jaccard_distance_tile(member, sizes, empty, full_tile(3))
        assert dist[0, 2] == 0.0 and dist[2, 0] == 0.0  # both empty
        assert dist[0, 1] == 1.0 and dist[1, 0] == 1.0  # empty vs non-empty

    def test_jaccard_no_tokens_anywhere(self):
        member, sizes, empty = url_membership_operands([set(), set(), set()])
        dist = jaccard_distance_tile(member, sizes, empty, full_tile(3))
        assert np.all(dist == 0.0)

    def test_soft_cosine_is_bitwise_symmetric(self):
        operands = tiny_operands(n=19, seed=5)
        sim = soft_cosine_similarity_tile(
            operands.bow_normed,
            operands.doc_emb,
            operands.zero_rows,
            operands.blend,
            full_tile(19),
        )
        assert sim.tobytes() == np.ascontiguousarray(sim.T).tobytes()
        assert np.all(np.diag(sim) == 1.0)
        assert sim.min() >= 0.0 and sim.max() <= 1.0

    def test_zero_embedding_rows_fall_back_to_exact_cosine(self):
        operands = tiny_operands(n=19, seed=5)
        sim = soft_cosine_similarity_tile(
            operands.bow_normed,
            operands.doc_emb,
            operands.zero_rows,
            operands.blend,
            full_tile(19),
        )
        exact = np.asarray(
            (operands.bow_normed @ operands.bow_normed.T).toarray()
        )
        np.clip(exact, 0.0, 1.0, out=exact)
        np.fill_diagonal(exact, 1.0)
        zero = np.flatnonzero(operands.zero_rows)
        assert np.allclose(sim[zero, :], exact[zero, :], atol=1e-12)
        assert np.allclose(sim[:, zero], exact[:, zero], atol=1e-12)

    def test_blocked_rows_equal_full_rows_bitwise(self):
        operands = tiny_operands(n=29, seed=9)
        full = soft_cosine_similarity_tile(
            operands.bow_normed,
            operands.doc_emb,
            operands.zero_rows,
            operands.blend,
            full_tile(29),
        )
        for start, stop in ((0, 4), (4, 11), (11, 29), (28, 29)):
            rows = soft_cosine_similarity_tile(
                operands.bow_normed,
                operands.doc_emb,
                operands.zero_rows,
                operands.blend,
                Tile(start, stop),
            )
            assert rows.tobytes() == full[start:stop].tobytes()


class TestCondensed:
    def test_round_trip_is_exact(self):
        rng = np.random.default_rng(2)
        n = 13
        square = rng.random((n, n))
        square = (square + square.T) / 2
        np.fill_diagonal(square, 0.0)
        condensed = square_to_condensed(square)
        assert condensed.shape == (condensed_size(n),)
        back = condensed_to_square(condensed, n)
        assert back.tobytes() == square.tobytes()

    def test_sizes(self):
        assert condensed_size(0) == 0
        assert condensed_size(1) == 0
        assert condensed_size(2) == 1
        assert condensed_size(100) == 4950

    def test_expansion_dtype(self):
        condensed = np.array([0.5, 0.25, 0.125], dtype=np.float32)
        square = condensed_to_square(condensed, 3, dtype=np.float64)
        assert square.dtype == np.float64
        assert square[0, 1] == 0.5 and square[2, 1] == 0.125
