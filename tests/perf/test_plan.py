"""Tile scheduling and execution-plan determinism."""

import numpy as np
import pytest
from scipy import sparse

from repro.perf import (
    DEFAULT_TILE_SIZE,
    ExecutionPlan,
    PairwiseOperands,
    Tile,
    combined_distance_tile,
    row_tiles,
)


def tiny_operands(n=23, seed=3):
    """Small synthetic corpus operands, picklable for the process backend."""
    rng = np.random.default_rng(seed)
    bow = sparse.random(n, 40, density=0.2, random_state=np.random.RandomState(seed), format="csr")
    norms = np.sqrt(np.asarray(bow.multiply(bow).sum(axis=1)).ravel())
    norms[norms == 0] = 1.0
    bow_normed = sparse.csr_matrix(sparse.diags(1.0 / norms) @ bow)
    emb = rng.normal(size=(n, 8))
    emb /= np.linalg.norm(emb, axis=1, keepdims=True)
    zero_rows = np.zeros(n, dtype=bool)
    zero_rows[::7] = True
    emb[zero_rows] = 0.0
    member = sparse.random(
        n, 30, density=0.15, random_state=np.random.RandomState(seed + 1), format="csr"
    )
    member.data[:] = 1.0
    sizes = np.asarray(member.sum(axis=1)).ravel()
    empty = sizes == 0
    return PairwiseOperands(
        bow_normed=bow_normed,
        doc_emb=emb,
        zero_rows=zero_rows,
        blend=0.4,
        url_member=member,
        url_sizes=sizes,
        url_empty=empty,
    )


def assemble(plan, operands):
    n = operands.n
    text = np.empty((n, n))
    url = np.empty((n, n))
    for tile, (text_rows, url_rows) in zip(
        plan.tiles(n), plan.run(combined_distance_tile, operands, plan.tiles(n))
    ):
        text[tile.start : tile.stop] = text_rows
        url[tile.start : tile.stop] = url_rows
    return text, url


class TestTiles:
    def test_row_tiles_partition_the_range(self):
        for n in (0, 1, 5, 23, 100):
            for tile_size in (1, 3, 7, 100):
                tiles = row_tiles(n, tile_size)
                covered = [i for t in tiles for i in range(t.start, t.stop)]
                assert covered == list(range(n))
                assert all(t.size <= tile_size for t in tiles)

    def test_invalid_tile_raises(self):
        with pytest.raises(ValueError):
            Tile(-1, 4)
        with pytest.raises(ValueError):
            Tile(5, 4)

    def test_invalid_chunking_raises(self):
        with pytest.raises(ValueError):
            row_tiles(10, 0)
        with pytest.raises(ValueError):
            row_tiles(-1, 4)

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            ExecutionPlan(workers=0)
        with pytest.raises(ValueError):
            ExecutionPlan(tile_size=0)
        assert ExecutionPlan().tile_size == DEFAULT_TILE_SIZE


class TestExecutionDeterminism:
    def test_tile_size_never_changes_the_bits(self):
        operands = tiny_operands()
        ref_text, ref_url = assemble(ExecutionPlan(tile_size=1024), operands)
        for tile_size in (1, 4, 7, 23):
            text, url = assemble(ExecutionPlan(tile_size=tile_size), operands)
            assert text.tobytes() == ref_text.tobytes()
            assert url.tobytes() == ref_url.tobytes()

    def test_process_backend_matches_serial_bitwise(self):
        operands = tiny_operands()
        ref = assemble(ExecutionPlan(workers=1, tile_size=6), operands)
        for workers in (2, 4):
            got = assemble(ExecutionPlan(workers=workers, tile_size=6), operands)
            assert got[0].tobytes() == ref[0].tobytes()
            assert got[1].tobytes() == ref[1].tobytes()

    @pytest.mark.no_detsan  # asserts laziness, which the sanitizer's
    # permuted-stream wrapper intentionally destroys
    def test_serial_stream_is_lazy(self):
        seen = []

        def kernel(payload, tile):
            seen.append(tile.start)
            return tile.start

        plan = ExecutionPlan(tile_size=5)
        stream = plan.stream(kernel, None, plan.tiles(15))
        assert seen == []  # nothing computed until consumed
        assert next(stream) == 0
        assert seen == [0]
        assert list(stream) == [5, 10]
