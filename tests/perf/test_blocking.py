"""Candidate blocking vs. the dense kernels: recall, bit-identity, order.

The blocking stage's whole contract is *exactness-preserving* O(n^2)
avoidance: every stored entry must equal the dense kernels' entry bit
for bit, every absent pair must carry a certificate ``total >= bound``,
and the enumeration must be canonical — invariant under tile size,
worker count, and DetSan's permuted submission order.  These tests pin
each leg of that contract against the dense oracle.
"""

import numpy as np
import pytest

from repro import paper_scenario, run_full_crawl
from repro.analysis.sanitizer import DetSan
from repro.core.distance import compute_distances
from repro.core.silhouette import average_silhouette, silhouette_samples
from repro.perf import (
    DEFAULT_SPARSE_BOUND,
    CutScoringOperands,
    ExecutionPlan,
    SparsePairwise,
    candidate_distance_tile,
    candidate_pairs_tile,
    component_labels,
    cut_silhouette_tile,
    prune_cross_component,
)


@pytest.fixture(scope="module")
def corpus(small_dataset):
    return small_dataset.valid_records[:160]


@pytest.fixture(scope="module")
def dense(corpus):
    return compute_distances(corpus)


@pytest.fixture(scope="module")
def sparse(corpus):
    return compute_distances(corpus, storage="sparse", blocking="url")


def stored_pair_set(matrix):
    rows, cols = matrix.pairs()
    return set(zip(rows.tolist(), cols.tolist()))


class TestSparsePairwiseInvariants:
    def test_upper_triangle_canonical_order(self, sparse):
        rows, cols = sparse.total.pairs()
        assert np.all(rows < cols)
        # Ascending row, then strictly ascending column within each row.
        assert np.all(np.diff(rows) >= 0)
        for i in range(sparse.total.n):
            row_cols, _ = sparse.total.row(i)
            assert np.all(np.diff(row_cols) > 0)
            assert np.all(row_cols > i)

    def test_nnz_counts_unordered_pairs(self, sparse):
        total = sparse.total
        assert total.nnz == total.indices.size
        assert total.n_stored_pairs == total.nnz
        assert sparse.blocking_stats.n_stored_pairs == total.nnz

    def test_three_channels_share_one_pattern(self, sparse):
        for channel in (sparse.text, sparse.url):
            assert channel.indptr.tobytes() == sparse.total.indptr.tobytes()
            assert channel.indices.tobytes() == sparse.total.indices.tobytes()

    def test_to_square_mirrors_and_fills(self, sparse, dense):
        square = sparse.total.to_square(np.inf)
        assert square.shape == (sparse.size, sparse.size)
        assert np.array_equal(square, square.T)
        assert np.all(np.diag(square) == 0.0)
        known = np.isfinite(square) & ~np.eye(sparse.size, dtype=bool)
        assert known.sum() == 2 * sparse.total.nnz
        np.testing.assert_array_equal(square[known], dense.total[known])

    def test_bound_validation(self):
        indptr = np.array([0, 0, 0], dtype=np.int64)
        empty = np.empty(0, dtype=np.int64)
        values = np.empty(0, dtype=np.float64)
        for bad in (0.0, -0.1, 0.51):
            with pytest.raises(ValueError):
                SparsePairwise(2, indptr, empty, values, bound=bad)
        with pytest.raises(ValueError):
            SparsePairwise(3, indptr, empty, values)  # indptr too short
        with pytest.raises(ValueError):
            SparsePairwise(
                2, np.array([0, 0, 1], dtype=np.int64), empty, values
            )  # indptr does not cover indices


class TestRecallOracle:
    """The no-missed-pair bound, against the dense kernels."""

    def test_stored_entries_bitwise_equal_dense(self, sparse, dense):
        rows, cols = sparse.total.pairs()
        for channel in ("text", "url", "total"):
            stored = getattr(sparse, channel).data
            reference = getattr(dense, channel)[rows, cols]
            assert stored.tobytes() == reference.tobytes()

    def test_no_pair_below_bound_is_missed(self, sparse, dense):
        bound = sparse.total.bound
        i, j = np.triu_indices(sparse.size, k=1)
        close = dense.total[i, j] < bound
        stored = stored_pair_set(sparse.total)
        missed = [
            (int(a), int(b))
            for a, b, c in zip(i[close], j[close], np.flatnonzero(close))
            if (int(a), int(b)) not in stored
        ]
        assert missed == []

    def test_absent_pairs_certified_at_least_bound(self, sparse, dense):
        square = sparse.total.to_square(np.inf)
        absent = np.isinf(square)
        assert np.all(dense.total[absent] >= sparse.total.bound)

    def test_unscreened_candidates_cover_half_bound(self, corpus, dense):
        # candidate_pairs_tile is the raw inverted-index enumeration: a
        # provable superset of every pair with total < 0.5 (the recall
        # bound the screens then tighten to the configured bound).
        sparse_half = compute_distances(
            corpus, storage="sparse", blocking="url", blocking_bound=0.5
        )
        plan = ExecutionPlan()
        operands = sparse_half.operands
        pairs = set()
        for tile in plan.tiles(sparse_half.size):
            rows, cols = candidate_pairs_tile(operands, tile)
            pairs.update(zip(rows.tolist(), cols.tolist()))
        i, j = np.triu_indices(sparse_half.size, k=1)
        close = dense.total[i, j] < 0.5
        assert all(
            (int(a), int(b)) in pairs for a, b in zip(i[close], j[close])
        )

    @pytest.mark.parametrize("seed", [3, 11])
    def test_recall_holds_across_seeds(self, seed):
        dataset = run_full_crawl(config=paper_scenario(seed=seed, scale=0.02))
        records = dataset.valid_records
        dense = compute_distances(records)
        sparse = compute_distances(records, storage="sparse", blocking="url")
        bound = sparse.total.bound
        i, j = np.triu_indices(len(records), k=1)
        close = dense.total[i, j] < bound
        stored = stored_pair_set(sparse.total)
        assert all(
            (int(a), int(b)) in stored for a, b in zip(i[close], j[close])
        )
        rows, cols = sparse.total.pairs()
        assert sparse.total.data.tobytes() == dense.total[rows, cols].tobytes()

    def test_bound_validation_on_kernel_and_api(self, corpus, sparse):
        plan = ExecutionPlan()
        tile = plan.tiles(8)[0]
        with pytest.raises(ValueError):
            candidate_distance_tile(sparse.operands, tile, bound=0.6)
        with pytest.raises(ValueError):
            compute_distances(
                corpus, storage="sparse", blocking="url", blocking_bound=0.0
            )


class TestShardingIdentity:
    def test_tile_size_and_workers_are_invisible(self, corpus, sparse):
        reference = sparse.total
        for plan in (
            ExecutionPlan(tile_size=7),
            ExecutionPlan(tile_size=1000),
            ExecutionPlan(workers=2, tile_size=48),
        ):
            got = compute_distances(
                corpus, plan=plan, storage="sparse", blocking="url"
            )
            assert got.total.indptr.tobytes() == reference.indptr.tobytes()
            assert got.total.indices.tobytes() == reference.indices.tobytes()
            assert got.total.data.tobytes() == reference.data.tobytes()
            assert got.text.data.tobytes() == sparse.text.data.tobytes()
            assert got.url.data.tobytes() == sparse.url.data.tobytes()

    @pytest.mark.no_detsan
    def test_enumeration_survives_permuted_submission(self, corpus, sparse):
        # DetSan permutes ExecutionPlan.stream's tile submission order and
        # checksums every tile against a canonical recompute; the
        # assembled candidate graph must not move a byte.
        with DetSan(seed=29, verify_tiles=True) as san:
            shaken = compute_distances(
                corpus,
                plan=ExecutionPlan(workers=2, tile_size=48),
                storage="sparse",
                blocking="url",
            )
        assert san.report.streams_permuted > 0
        assert not san.report.divergences
        assert shaken.total.indptr.tobytes() == sparse.total.indptr.tobytes()
        assert shaken.total.indices.tobytes() == sparse.total.indices.tobytes()
        assert shaken.total.data.tobytes() == sparse.total.data.tobytes()


class TestComponentsAndPrune:
    def test_labels_partition_the_sub_bound_graph(self, sparse):
        n_components, labels = component_labels(sparse.total)
        assert labels.shape == (sparse.size,)
        assert n_components == len(np.unique(labels))
        rows, cols = sparse.total.pairs()
        below = sparse.total.data < sparse.total.bound
        assert np.all(labels[rows[below]] == labels[cols[below]])
        stats = sparse.blocking_stats
        assert stats.n_components == n_components
        assert stats.max_component == int(np.bincount(labels).max())

    def test_prune_drops_exactly_cross_component_entries(self):
        # Hand-built graph: components {0,1} and {2,3} linked only by a
        # stored-but-at-bound entry (1,2) that the prune must drop.
        indptr = np.array([0, 1, 2, 3, 3], dtype=np.int64)
        indices = np.array([1, 2, 3], dtype=np.int64)
        values = np.array([0.1, 0.45, 0.2])
        graph = SparsePairwise(4, indptr, indices, values, bound=0.45)
        n_components, labels = component_labels(graph)
        assert n_components == 2
        keep, kept_indptr = prune_cross_component(graph, labels)
        assert keep.tolist() == [True, False, True]
        assert kept_indptr.tolist() == [0, 1, 1, 2, 2]

    def test_stats_accounting(self, sparse):
        stats = sparse.blocking_stats
        assert stats.n == sparse.size
        assert stats.n_total_pairs == sparse.size * (sparse.size - 1) // 2
        assert 0 < stats.n_stored_pairs <= stats.n_candidate_pairs
        assert 0.0 < stats.pruning_ratio < 1.0
        assert (
            stats.pruning_ratio
            == 1.0 - stats.n_stored_pairs / stats.n_total_pairs
        )


class TestCutSilhouetteTile:
    def _digest(self, labels):
        unique, compact = np.unique(labels, return_inverse=True)
        k = unique.size
        counts = np.bincount(compact, minlength=k).astype(np.float64)
        order = np.argsort(compact, kind="stable")
        starts = np.zeros(k, dtype=np.intp)
        starts[1:] = np.cumsum(counts[:-1]).astype(np.intp)
        return compact, order, starts, counts

    def test_bitwise_matches_silhouette_samples(self, sparse, dense):
        from repro.core.clustering import AgglomerativeClusterer

        linkage = AgglomerativeClusterer().fit(dense.total)
        labelings = [linkage.cut(t) for t in (0.1, 0.2)]
        digests = [self._digest(labels) for labels in labelings]
        operands = CutScoringOperands(
            pairwise=sparse.operands,
            dtype="float64",
            compacts=tuple(d[0] for d in digests),
            orders=tuple(d[1] for d in digests),
            starts=tuple(d[2] for d in digests),
            counts=tuple(d[3] for d in digests),
        )
        for plan in (ExecutionPlan(tile_size=48), ExecutionPlan(tile_size=23)):
            tiles = plan.tiles(sparse.size)
            parts = list(plan.stream(cut_silhouette_tile, operands, tiles))
            samples = np.concatenate(parts, axis=1)
            for index, labels in enumerate(labelings):
                reference = silhouette_samples(dense.total, labels)
                assert samples[index].tobytes() == reference.tobytes()
                assert float(samples[index].mean()) == average_silhouette(
                    dense.total, labels
                )
