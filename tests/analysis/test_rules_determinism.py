"""Unit tests for the determinism rules: wallclock, rng, network imports."""

from repro.analysis.rules.network import NoNetworkImportsRule
from repro.analysis.rules.rng import NoUnseededRngRule
from repro.analysis.rules.wallclock import NoWallclockRule

from tests.analysis.conftest import check_snippet


class TestNoWallclock:
    def test_flags_time_time(self):
        findings = check_snippet(
            NoWallclockRule(),
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        assert [f.rule_id for f in findings] == ["no-wallclock"]
        assert "time.time" in findings[0].message

    def test_flags_datetime_now_and_aliased_import(self):
        findings = check_snippet(
            NoWallclockRule(),
            """
            from datetime import datetime as dt
            import time as t

            def stamps():
                return dt.now(), dt.utcnow(), t.monotonic()
            """,
        )
        assert len(findings) == 3

    def test_ignores_simulation_time_and_unrelated_attributes(self):
        findings = check_snippet(
            NoWallclockRule(),
            """
            def tick(clock):
                # attribute chains not rooted in an import are fine
                return clock.time() + clock.now()
            """,
        )
        assert findings == []

    def test_exempt_inside_obs_clock(self):
        findings = check_snippet(
            NoWallclockRule(),
            """
            import time

            def real_now():
                return time.perf_counter()
            """,
            module="repro.obs.clock",
        )
        assert findings == []

    def test_repro_util_is_no_longer_exempt(self):
        # Clock access moved to repro.obs.clock; even util must not read it.
        findings = check_snippet(
            NoWallclockRule(),
            "import time\nx = time.time()\n",
            module="repro.util.clock",
        )
        assert len(findings) == 1

    def test_prefix_exemption_is_not_a_string_prefix_match(self):
        # repro.obs.clockwork is NOT repro.obs.clock
        findings = check_snippet(
            NoWallclockRule(),
            "import time\nx = time.time()\n",
            module="repro.obs.clockwork",
        )
        assert len(findings) == 1


class TestNoUnseededRng:
    def test_flags_global_random_functions(self):
        findings = check_snippet(
            NoUnseededRngRule(),
            """
            import random

            def pick(items):
                random.shuffle(items)
                return random.choice(items)
            """,
        )
        assert len(findings) == 2
        assert all(f.rule_id == "no-unseeded-rng" for f in findings)

    def test_flags_unseeded_constructors_but_not_seeded(self):
        findings = check_snippet(
            NoUnseededRngRule(),
            """
            import random
            import numpy as np

            bad_a = random.Random()
            bad_b = np.random.default_rng()
            good_a = random.Random(7)
            good_b = np.random.default_rng(7)
            good_c = np.random.SeedSequence([1, 2])
            """,
        )
        assert len(findings) == 2
        assert {f.line for f in findings} == {5, 6}

    def test_flags_legacy_numpy_global(self):
        findings = check_snippet(
            NoUnseededRngRule(),
            """
            import numpy as np

            def jitter(n):
                return np.random.rand(n) + np.random.normal(size=n)
            """,
        )
        assert len(findings) == 2

    def test_instance_streams_are_fine(self):
        findings = check_snippet(
            NoUnseededRngRule(),
            """
            def draw(rng):
                return rng.choice([1, 2]) + rng.random()
            """,
        )
        assert findings == []

    def test_exempt_inside_repro_util(self):
        findings = check_snippet(
            NoUnseededRngRule(),
            "import random\nx = random.Random()\n",
            module="repro.util.rng",
        )
        assert findings == []


class TestNoNetworkImports:
    def test_flags_direct_and_from_imports(self):
        findings = check_snippet(
            NoNetworkImportsRule(),
            """
            import socket
            import urllib.request
            from urllib import request
            from http.client import HTTPConnection
            import requests
            """,
        )
        assert len(findings) == 5
        assert all(f.severity.label == "error" for f in findings)

    def test_allows_offline_urllib_and_stdlib(self):
        findings = check_snippet(
            NoNetworkImportsRule(),
            """
            import hashlib
            import urllib.parse
            from urllib.parse import urlsplit
            import json
            """,
        )
        assert findings == []

    def test_no_module_exemption_not_even_util(self):
        findings = check_snippet(
            NoNetworkImportsRule(), "import socket\n", module="repro.util.net"
        )
        assert len(findings) == 1
