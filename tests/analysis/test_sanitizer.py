"""DetSan, the runtime determinism sanitizer, on synthetic kernels.

Each test drives the sanitizer against a hand-built violation (or
non-violation) so every hook is proven to fire — mirroring how
``tests/analysis/flow/test_races.py`` proves the static detectors fire
on racepkg. The hooks patch process-global state, so every installation
here is scoped by the context manager and the last test asserts full
restoration.
"""

import glob
import os
import pathlib
import pickle
import random
import time

import pytest

# Every test here installs its own DetSan; nesting under the session
# sanitizer of a REPRO_DETSAN=1 run would double-permute and advance the
# session RNG between the seed-determinism assertions.
pytestmark = pytest.mark.no_detsan

from repro.analysis.sanitizer import (
    DetSan,
    DetSanViolation,
    _checksum,
    session_report,
)
from repro.perf.plan import ExecutionPlan

# A module whose __name__ places its frames inside the repro namespace,
# so the caller-gated hooks treat these helpers as repro code.
_REPRO_NS = {"__name__": "repro._detsan_probe", "os": os, "glob": glob}
exec(
    "def probe_listdir(path):\n"
    "    return os.listdir(path)\n"
    "def probe_glob(pattern):\n"
    "    return glob.glob(pattern)\n"
    "def probe_clock(time_mod):\n"
    "    return time_mod.time()\n"
    "def probe_rng(random_mod):\n"
    "    return random_mod.random()\n",
    _REPRO_NS,
)


def stateful_kernel(operands, tile):
    # Result depends on how many tiles ran before: the canonical
    # recompute sees more accumulated state than the permuted run did.
    operands.append(tile.start)
    return (tile.start, len(operands))


def pure_kernel(operands, tile):
    return [operands[i] * 2 for i in range(tile.start, tile.stop)]


@pytest.fixture
def tree(tmp_path):
    for name in ("cc", "aa", "bb", "dd"):
        (tmp_path / name).write_text(name)
    return tmp_path


class TestFilesystemShuffle:
    def test_listdir_from_repro_code_is_shuffled(self, tree):
        with DetSan(seed=5) as san:
            entries = _REPRO_NS["probe_listdir"](str(tree))
        assert sorted(entries) == ["aa", "bb", "cc", "dd"]
        assert san.report.fs_shuffled >= 1

    def test_shuffle_is_seed_deterministic(self, tree):
        runs = []
        for _ in range(2):
            with DetSan(seed=5):
                runs.append(_REPRO_NS["probe_listdir"](str(tree)))
        assert runs[0] == runs[1]

    def test_glob_from_repro_code_is_shuffled_counted(self, tree):
        with DetSan(seed=5) as san:
            found = _REPRO_NS["probe_glob"](str(tree / "*"))
        assert len(found) == 4
        assert san.report.fs_shuffled >= 1

    def test_non_repro_callers_see_the_real_order(self, tree):
        # This test module is not repro.*, so direct calls are untouched.
        with DetSan(seed=5) as san:
            direct = os.listdir(str(tree))
        assert direct == sorted(os.listdir(str(tree))) or san.report.fs_shuffled == 0


class TestStreamPermutation:
    def test_pure_kernel_survives_verify(self):
        plan = ExecutionPlan(tile_size=3)
        operands = list(range(10))
        with DetSan(seed=7, verify_tiles=True) as san:
            got = list(plan.stream(pure_kernel, operands, plan.tiles(10)))
        assert got == [pure_kernel(operands, t) for t in plan.tiles(10)]
        assert san.report.streams_permuted == 1
        assert san.report.tiles_checksummed == 4
        assert san.report.tiles_verified == 4
        assert san.report.divergences == []

    def test_stateful_kernel_raises_detsan_violation(self):
        plan = ExecutionPlan(tile_size=2)
        with pytest.raises(DetSanViolation, match="diverged"):
            with DetSan(seed=7, verify_tiles=True):
                list(plan.stream(stateful_kernel, [], plan.tiles(8)))

    def test_divergence_is_recorded_in_the_report(self):
        plan = ExecutionPlan(tile_size=2)
        san = DetSan(seed=7, verify_tiles=True)
        with pytest.raises(DetSanViolation):
            with san:
                list(plan.stream(stateful_kernel, [], plan.tiles(8)))
        assert len(san.report.divergences) == 1
        assert "stateful_kernel" in san.report.divergences[0]

    def test_without_verify_tiles_only_checksums(self):
        plan = ExecutionPlan(tile_size=2)
        with DetSan(seed=7, verify_tiles=False) as san:
            list(plan.stream(stateful_kernel, [], plan.tiles(8)))
        assert san.report.tiles_checksummed == 4
        assert san.report.tiles_verified == 0


class TestTripwires:
    def test_wallclock_read_from_repro_code_trips(self):
        with DetSan(seed=1, forbid_wallclock=True):
            with pytest.raises(DetSanViolation, match="time.time"):
                _REPRO_NS["probe_clock"](time)
            assert isinstance(time.time(), float)  # non-repro caller: fine

    def test_global_rng_from_repro_code_trips(self):
        with DetSan(seed=1, forbid_global_rng=True):
            with pytest.raises(DetSanViolation, match="random.random"):
                _REPRO_NS["probe_rng"](random)


class TestSuspendResume:
    def test_suspend_disables_perturbation(self, tree):
        with DetSan(seed=5) as san:
            san.suspend()
            assert not san.active
            before = san.report.fs_shuffled
            _REPRO_NS["probe_listdir"](str(tree))
            assert san.report.fs_shuffled == before
            san.resume()
            assert san.active
            _REPRO_NS["probe_listdir"](str(tree))
            assert san.report.fs_shuffled == before + 1

    def test_no_session_report_outside_plugin_runs(self):
        # plugin_configure was not called by this test; either no session
        # exists (plain run) or the REPRO_DETSAN session is live.
        report = session_report()
        assert report is None or report.streams_permuted >= 0


class TestChecksumCanonicalization:
    def test_digest_invariant_to_pickle_round_trips(self):
        # Regression: a pool result crosses the process boundary (one
        # pickle round-trip) while the canonical recompute is fresh;
        # interned-string sharing then differs and raw dumps bytes
        # diverge even for equal values.
        fresh = [{"url": "https://a.example/", "n": i} for i in range(3)]
        round_tripped = pickle.loads(pickle.dumps(fresh, protocol=4))
        assert _checksum(fresh) == _checksum(round_tripped)
        # And the canonical form is a fixed point: more round-trips
        # cannot move the digest again.
        twice = pickle.loads(pickle.dumps(round_tripped, protocol=4))
        assert _checksum(twice) == _checksum(fresh)

    def test_unpicklable_values_checksum_to_none(self):
        assert _checksum(lambda: 0) is None


def test_uninstall_restores_every_patched_callable(tmp_path):
    originals = (
        os.listdir,
        glob.glob,
        glob.iglob,
        pathlib.Path.iterdir,
        pathlib.Path.glob,
        pathlib.Path.rglob,
        ExecutionPlan.stream,
        time.time,
        random.random,
    )
    san = DetSan(
        seed=3,
        forbid_wallclock=True,
        forbid_global_rng=True,
    )
    san.install()
    assert os.listdir is not originals[0]
    san.uninstall()
    restored = (
        os.listdir,
        glob.glob,
        glob.iglob,
        pathlib.Path.iterdir,
        pathlib.Path.glob,
        pathlib.Path.rglob,
        ExecutionPlan.stream,
        time.time,
        random.random,
    )
    assert restored == originals
