"""CLI behaviour: arguments, formats, exit codes, baseline workflow."""

import json

import pytest

from repro.analysis.cli import main

BAD = "import time\nx = time.time()\n"


@pytest.fixture
def bad_tree(tmp_path):
    (tmp_path / "mod.py").write_text(BAD)
    return tmp_path


def run_cli(capsys, *argv):
    code = main([str(a) for a in argv])
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        code, out, _ = run_cli(capsys, tmp_path)
        assert code == 0
        assert "no findings" in out

    def test_findings_exit_one_with_human_output(self, bad_tree, capsys):
        code, out, _ = run_cli(capsys, bad_tree)
        assert code == 1
        assert "no-wallclock" in out
        assert "mod.py:2" in out

    def test_json_format(self, bad_tree, capsys):
        code, out, _ = run_cli(capsys, bad_tree, "--format", "json")
        assert code == 1
        payload = json.loads(out)
        assert payload["summary"]["findings"] == 1
        assert payload["findings"][0]["rule"] == "no-wallclock"

    def test_fail_on_error_ignores_warnings(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("def f(a=[]):\n    pass\n")
        code_strict, _, _ = run_cli(capsys, tmp_path)
        code_lax, _, _ = run_cli(capsys, tmp_path, "--fail-on", "error")
        assert code_strict == 1
        assert code_lax == 0

    def test_select_and_ignore(self, bad_tree, capsys):
        code, _, _ = run_cli(capsys, bad_tree, "--select", "no-bare-except")
        assert code == 0
        code, _, _ = run_cli(capsys, bad_tree, "--ignore", "no-wallclock")
        assert code == 0

    def test_unknown_rule_is_usage_error(self, bad_tree, capsys):
        code, _, err = run_cli(capsys, bad_tree, "--select", "no-such-rule")
        assert code == 2
        assert "unknown rule" in err

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        code, _, err = run_cli(capsys, tmp_path / "absent")
        assert code == 2
        assert "no such path" in err

    def test_list_rules(self, capsys):
        code, out, _ = run_cli(capsys, "--list-rules")
        assert code == 0
        for rule_id in (
            "no-wallclock",
            "no-unseeded-rng",
            "no-network-imports",
            "import-layering",
            "no-mutable-default",
            "no-bare-except",
            "deterministic-emit",
            "public-api-annotations",
        ):
            assert rule_id in out

    def test_write_then_use_baseline(self, bad_tree, capsys):
        baseline = bad_tree / "baseline.json"
        code, out, _ = run_cli(
            capsys, bad_tree, "--baseline", baseline, "--write-baseline"
        )
        assert code == 0
        assert baseline.exists()

        code, out, _ = run_cli(capsys, bad_tree, "--baseline", baseline)
        assert code == 0
        assert "1 baselined" in out
