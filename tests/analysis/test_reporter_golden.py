"""Golden tests pinning the ``repro-lint/2`` JSON reporter output.

The JSON payload is a machine interface (CI annotations, dashboards), so
its shape is pinned byte-for-byte on a synthetic result, and its
semantic guarantees — chain ordering, CWD-independent fingerprints — are
pinned on real flow findings from the racepkg fixture corpus.
"""

import json
import textwrap

from repro.analysis.engine import AnalysisResult
from repro.analysis.finding import Finding, Severity
from repro.analysis.flow import run_flow
from repro.analysis.reporters import JSON_SCHEMA, format_json

from tests.analysis.flow.conftest import FIXTURES

GOLDEN = textwrap.dedent(
    """\
    {
      "schema": "repro-lint/2",
      "findings": [
        {
          "path": "pkg/mod.py",
          "line": 7,
          "column": 3,
          "rule": "no-wallclock",
          "severity": "error",
          "message": "wall-clock read",
          "fingerprint": "6ba86dbc22ef9083"
        },
        {
          "path": "pkg/sink.py",
          "line": 12,
          "column": 1,
          "rule": "flow-nondet-taint",
          "severity": "error",
          "message": "taint reaches sink",
          "fingerprint": "6912c84cf4cd74ca",
          "chain": [
            "pkg.sink.emit (pkg/sink.py:12)",
            "pkg.mod.jitter (pkg/mod.py:7)",
            "wallclock time.time (pkg/mod.py:7)"
          ]
        }
      ],
      "summary": {
        "findings": 2,
        "suppressed": 1,
        "baselined": 0,
        "files_checked": 2,
        "rules": [
          "no-wallclock",
          "flow-nondet-taint"
        ],
        "flow": {
          "modules": 2,
          "parsed": 2,
          "cached": 0
        }
      }
    }"""
)


def golden_result() -> AnalysisResult:
    plain = Finding(
        path="pkg/mod.py",
        line=7,
        column=3,
        rule_id="no-wallclock",
        severity=Severity.ERROR,
        message="wall-clock read",
        source_line="t = time.time()",
    )
    flow = Finding(
        path="pkg/sink.py",
        line=12,
        column=1,
        rule_id="flow-nondet-taint",
        severity=Severity.ERROR,
        message="taint reaches sink",
        source_line="def emit(x):",
        chain=(
            "pkg.sink.emit (pkg/sink.py:12)",
            "pkg.mod.jitter (pkg/mod.py:7)",
            "wallclock time.time (pkg/mod.py:7)",
        ),
    )
    return AnalysisResult(
        findings=[plain, flow],
        suppressed=1,
        baselined=0,
        files_checked=2,
        rule_ids=("no-wallclock", "flow-nondet-taint"),
        flow_stats={"modules": 2, "parsed": 2, "cached": 0},
    )


def test_json_payload_is_byte_golden():
    assert format_json(golden_result()) == GOLDEN


def test_schema_and_finding_fields_are_pinned():
    payload = json.loads(format_json(golden_result()))
    assert payload["schema"] == JSON_SCHEMA == "repro-lint/2"
    assert list(payload) == ["schema", "findings", "summary"]
    plain, flow = payload["findings"]
    assert list(plain) == [
        "path",
        "line",
        "column",
        "rule",
        "severity",
        "message",
        "fingerprint",
    ]
    assert list(flow) == [*list(plain), "chain"]
    assert list(payload["summary"]) == [
        "findings",
        "suppressed",
        "baselined",
        "files_checked",
        "rules",
        "flow",
    ]


def test_real_flow_chains_run_root_to_access():
    # Chain hops are ordered from the reporting root (sink or ship
    # group) toward the access/source; the last hop is always the
    # concrete access text, so --explain output reads top-down.
    result = run_flow([FIXTURES / "racepkg"])
    flagged = [ff.finding for ff in result.all_findings]
    assert flagged
    for finding in flagged:
        payload = finding.to_dict()
        assert payload["chain"], finding.rule_id
        for hop in payload["chain"]:
            assert "(" in hop and hop.endswith(")")
        last = payload["chain"][-1]
        assert any(
            verb in last for verb in ("writes ", "reads ", "merge ", " at ")
        ), last


def test_fingerprints_are_stable_across_cwd(tmp_path, monkeypatch):
    # Finding paths resolve against the containing project root, so the
    # fingerprint (rule|path|source-line hash) must not change with the
    # directory pushlint was launched from.
    def fingerprints():
        result = run_flow([FIXTURES / "racepkg"])
        return sorted(ff.finding.fingerprint for ff in result.all_findings)

    baseline = fingerprints()
    assert baseline
    monkeypatch.chdir(tmp_path)
    assert fingerprints() == baseline
    monkeypatch.chdir(FIXTURES / "racepkg")
    assert fingerprints() == baseline
