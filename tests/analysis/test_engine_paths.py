"""File discovery and display-path regressions in the engine.

Covers the two satellite fixes: ``iter_python_files`` must deduplicate
symlinked/duplicate inputs in a single resolve+sort pass, and
``_display_path`` must be anchored at the project root rather than the
process CWD (findings and cache keys must not change when pushlint is
invoked from a subdirectory).
"""

import os
from pathlib import Path

import pytest

from repro.analysis.engine import _display_path, _root_cache, iter_python_files

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestIterPythonFiles:
    def test_duplicate_inputs_yield_once(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("x = 1\n")
        files = list(iter_python_files([mod, mod, tmp_path]))
        assert files == [mod]

    def test_symlinked_duplicate_yields_once(self, tmp_path):
        real = tmp_path / "real"
        real.mkdir()
        mod = real / "mod.py"
        mod.write_text("x = 1\n")
        link = tmp_path / "link.py"
        try:
            link.symlink_to(mod)
        except OSError:
            pytest.skip("platform without symlink support")
        files = list(iter_python_files([link, real]))
        assert len(files) == 1

    def test_output_is_sorted_and_recursive(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "a.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        files = list(iter_python_files([tmp_path]))
        assert files == sorted(files)
        assert len(files) == 3

    def test_non_python_and_hidden_dirs_skipped(self, tmp_path):
        (tmp_path / "mod.py").write_text("x = 1\n")
        (tmp_path / "notes.txt").write_text("not python\n")
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "mod.cpython-311.py").write_text("x\n")
        files = list(iter_python_files([tmp_path]))
        assert files == [tmp_path / "mod.py"]


class TestDisplayPath:
    def test_repo_file_is_root_relative(self):
        target = REPO_ROOT / "src" / "repro" / "analysis" / "engine.py"
        assert _display_path(target) == "src/repro/analysis/engine.py"

    def test_independent_of_cwd(self, monkeypatch):
        target = REPO_ROOT / "src" / "repro" / "analysis" / "engine.py"
        monkeypatch.chdir(REPO_ROOT)
        from_root = _display_path(target)
        monkeypatch.chdir(REPO_ROOT / "src")
        from_src = _display_path(target)
        monkeypatch.chdir(REPO_ROOT / "src" / "repro")
        from_pkg = _display_path(target)
        assert from_root == from_src == from_pkg == "src/repro/analysis/engine.py"

    def test_file_outside_any_project_falls_back(self, tmp_path, monkeypatch):
        mod = tmp_path / "mod.py"
        mod.write_text("x = 1\n")
        monkeypatch.chdir(tmp_path)
        assert _display_path(mod) == "mod.py"

    def test_marker_directory_becomes_root(self, tmp_path):
        _root_cache.clear()
        try:
            project = tmp_path / "proj"
            (project / "pkg").mkdir(parents=True)
            (project / "pyproject.toml").write_text("[project]\n")
            mod = project / "pkg" / "mod.py"
            mod.write_text("x = 1\n")
            assert _display_path(mod) == "pkg/mod.py"
        finally:
            _root_cache.clear()

    def test_display_paths_stable_for_engine_runs_from_subdir(
        self, tmp_path, monkeypatch
    ):
        # End to end: findings carry the same path whatever the CWD is.
        from repro.analysis import AnalysisEngine

        project = tmp_path / "proj"
        (project / "sub").mkdir(parents=True)
        (project / "pyproject.toml").write_text("[project]\n")
        bad = project / "bad.py"
        bad.write_text("import time\nx = time.time()\n")
        _root_cache.clear()
        try:
            monkeypatch.chdir(project)
            at_root = AnalysisEngine().run([bad]).findings
            monkeypatch.chdir(project / "sub")
            in_sub = AnalysisEngine().run([Path(os.pardir) / "bad.py"]).findings
            assert at_root and in_sub
            assert at_root[0].path == in_sub[0].path == "bad.py"
            assert at_root[0].fingerprint == in_sub[0].fingerprint
        finally:
            _root_cache.clear()
