"""ProjectIndex: symbol resolution and call-graph edge cases.

Half of these run against the real ``src/repro`` tree — the ExecutionPlan
ship in ``repro.core.distance`` is exactly the structure the ISSUE calls
out; ``__getattr__``-shim following stays covered by the ``shimpkg``
fixture (the real tree retired its last re-export shim in PR 7).
"""

from pathlib import Path

import pytest

from repro.analysis.flow import ProjectIndex

from tests.analysis.flow.conftest import build_index

REPO_ROOT = Path(__file__).resolve().parents[3]
SRC = REPO_ROOT / "src" / "repro"


@pytest.fixture(scope="module")
def src_index() -> ProjectIndex:
    return ProjectIndex.build([SRC])


class TestRealTreeResolution:
    def test_retired_shim_module_no_longer_resolves(self, src_index):
        # The repro.webenv.urls re-export shim was removed in PR 7; the
        # moved name resolves only at its real home now.
        assert src_index.resolve_symbol("repro.webenv.urls.Url") is None
        symbol = src_index.resolve_symbol("repro.util.urls.Url")
        assert symbol is not None
        assert symbol.module == "repro.util.urls"

    def test_package_reexport_resolves(self, src_index):
        symbol = src_index.resolve_symbol("repro.perf.combined_distance_tile")
        assert symbol is not None
        assert symbol.module == "repro.perf.kernels"

    def test_method_resolution_through_class(self, src_index):
        symbol = src_index.resolve_symbol(
            "repro.core.pipeline.PushAdMiner.stage_features"
        )
        assert symbol is not None
        assert symbol.kind == "function"
        assert symbol.qualname == "PushAdMiner.stage_features"

    def test_real_execution_plan_ship_sites_are_found(self, src_index):
        # compute_distances ships two kernels through plan.stream: the
        # dense combined-distance tile and, on the sparse path, the
        # blocking candidate kernel (wrapped in functools.partial to bind
        # the bound — the index must see through the partial).
        ships = src_index.shipped_callables()
        stream_ships = [
            s
            for s in ships
            if s.site.method == "stream"
            and s.shipper == ("repro.core.distance", "compute_distances")
        ]
        assert len(stream_ships) == 2
        targets = {s.target for s in stream_ships}
        assert targets == {
            ("repro.perf.kernels", "combined_distance_tile"),
            ("repro.perf.blocking", "candidate_distance_tile"),
        }

    def test_sparse_cut_sweep_ship_site_is_found(self, src_index):
        # The streaming cut sweep ships the silhouette kernel through a
        # var-typed ExecutionPlan — the index must still see the ship.
        ships = [
            s
            for s in src_index.shipped_callables()
            if s.shipper == ("repro.core.clustering", "evaluate_cuts_sparse")
        ]
        assert [s.target for s in ships] == [
            ("repro.perf.blocking", "cut_silhouette_tile")
        ]

    def test_unresolved_externals_produce_no_edges(self, src_index):
        assert src_index.resolve_symbol("json.dumps") is None
        assert src_index.resolve_symbol("os.path.join") is None


class TestFixtureResolution:
    def test_self_method_call_resolves(self):
        index = build_index("shimpkg")
        graph = index.callgraph()
        succ = graph.successors(("shimpkg.user", "Widget.render_status"))
        assert ("shimpkg.user", "Widget.poll") in succ

    def test_import_through_shim_builds_edge(self):
        index = build_index("shimpkg")
        graph = index.callgraph()
        succ = graph.successors(("shimpkg.user", "Widget.poll"))
        assert ("shimpkg.modern", "tick") in succ

    def test_partial_call_builds_edge_to_wrapped_function(self):
        index = build_index("purepkg")
        ships = [
            s
            for s in index.shipped_callables()
            if s.shipper == ("purepkg.driver", "run_partial")
        ]
        assert len(ships) == 1
        assert ships[0].target == ("purepkg.kernels", "impure_kernel")


class TestCallGraph:
    def test_bfs_paths_are_shortest_and_rooted(self):
        index = build_index("taintpkg")
        graph = index.callgraph()
        root = ("taintpkg.reporters", "format_report")
        paths = graph.bfs_paths(root)
        assert paths[root] == (root,)
        leaf = ("taintpkg.clockio", "_raw_now")
        assert paths[leaf][0] == root
        assert paths[leaf][-1] == leaf
        assert len(paths[leaf]) == 4

    def test_callgraph_is_deterministic(self):
        one = build_index("taintpkg", "purepkg").callgraph()
        two = build_index("taintpkg", "purepkg").callgraph()
        assert one.nodes() == two.nodes()
        for node in one.nodes():
            assert one.successors(node) == two.successors(node)

    def test_stats_shape(self, src_index):
        stats = src_index.stats()
        assert stats["modules"] > 100
        assert stats["parsed"] == stats["modules"]
        assert stats["cached"] == 0
