"""Cross-layer dedupe of ``flow-dense-alloc`` vs ``no-matrix-densify``.

Unit-level: synthetic findings shaped exactly like the two rules emit
them.  The integration hook (``--flow`` merging in the CLI) is covered
by ``test_cli_flow``'s end-to-end runs staying clean.
"""

from __future__ import annotations

from repro.analysis.finding import Finding, Severity
from repro.analysis.flow.dedupe import drop_duplicate_dense_findings


def _per_file(source_line, rule_id="no-matrix-densify"):
    return Finding(
        path="src/repro/core/distance.py",
        line=10,
        column=5,
        rule_id=rule_id,
        severity=Severity.ERROR,
        message="caller-side densify",
        source_line=source_line,
    )


def _flow(containing="repro.perf.condensed.condensed_to_square",
          rule_id="flow-dense-alloc"):
    return Finding(
        path="src/repro/perf/condensed.py",
        line=42,
        column=1,
        rule_id=rule_id,
        severity=Severity.ERROR,
        message="O(n^2) allocation",
        source_line="out = np.zeros((n, n))",
        chain=(
            "repro.core.distance.densify (src/repro/core/distance.py:10)",
            f"{containing} (src/repro/perf/condensed.py:30)",
            "allocation np.zeros((n:big, n:big)) "
            "(src/repro/perf/condensed.py:42)",
        ),
    )


def test_flow_echo_of_flagged_callee_is_dropped():
    flow = [_flow()]
    per_file = [_per_file("square = condensed_to_square(condensed, n)")]
    kept, dropped = drop_duplicate_dense_findings(flow, per_file)
    assert kept == [] and dropped == 1


def test_todense_attribute_matches_without_a_call():
    flow = [_flow(containing="repro.perf.sparsemat.Matrix.todense")]
    per_file = [_per_file("dense = matrix.todense")]
    kept, dropped = drop_duplicate_dense_findings(flow, per_file)
    assert kept == [] and dropped == 1


def test_unrelated_allocation_survives():
    # A quadratic allocation reached without any flagged densifier call:
    # the flow pass stays the stronger net.
    flow = [_flow(containing="repro.perf.kernels.hidden_helper")]
    per_file = [_per_file("square = condensed_to_square(condensed, n)")]
    kept, dropped = drop_duplicate_dense_findings(flow, per_file)
    assert kept == flow and dropped == 0


def test_no_per_file_findings_passes_everything_through():
    flow = [_flow()]
    kept, dropped = drop_duplicate_dense_findings(flow, [])
    assert kept == flow and dropped == 0


def test_other_rules_never_correlate():
    flow = [_flow(rule_id="flow-dtype-promotion")]
    per_file = [_per_file("square = condensed_to_square(condensed, n)")]
    kept, dropped = drop_duplicate_dense_findings(flow, per_file)
    assert kept == flow and dropped == 0

    flow = [_flow()]
    other_rule = [_per_file(
        "square = condensed_to_square(condensed, n)", rule_id="no-walrus"
    )]
    kept, dropped = drop_duplicate_dense_findings(flow, other_rule)
    assert kept == flow and dropped == 0


def test_order_of_kept_findings_is_preserved():
    survivor_a = _flow(containing="repro.perf.kernels.helper_a")
    echo = _flow()
    survivor_b = _flow(containing="repro.perf.kernels.helper_b")
    per_file = [_per_file("square = condensed_to_square(condensed, n)")]
    kept, dropped = drop_duplicate_dense_findings(
        [survivor_a, echo, survivor_b], per_file
    )
    assert kept == [survivor_a, survivor_b] and dropped == 1
