"""The parallel-purity pass on the synthetic fixture corpus.

Plus one real-tree regression: the sharded blocking kernels
(``candidate_distance_tile``, ``cut_silhouette_tile``) must stay
parallel-pure — they fan out over process pools, so any module-state
write would silently break worker-count byte-identity.
"""

from pathlib import Path

from repro.analysis import AnalysisEngine
from repro.analysis.flow import run_flow

from tests.analysis.flow.conftest import FIXTURES, flow_over, write_package

SRC = Path(__file__).resolve().parents[3] / "src" / "repro"


def purity_findings(result):
    return [
        ff
        for ff in result.all_findings
        if ff.finding.rule_id == "flow-parallel-purity"
    ]


class TestSubmitShips:
    def test_driver_module_is_per_file_clean(self):
        result = AnalysisEngine().run([FIXTURES / "purepkg" / "driver.py"])
        assert result.ok, [str(f) for f in result.findings]

    def test_impure_kernel_flagged_at_ship_site(self):
        result = flow_over("purepkg")
        impure = [
            ff.finding
            for ff in purity_findings(result)
            if "run_impure" in ff.finding.message
        ]
        # Both the subscript write (_CACHE, via _memo) and the in-place
        # mutation (_LOG.append) are reported, each with its chain.
        assert {
            w for f in impure for w in ("_CACHE", "_LOG") if w in f.message
        } == {"_CACHE", "_LOG"}
        for finding in impure:
            assert finding.path.endswith("purepkg/driver.py")
            assert "impure_kernel" in finding.chain[0]

    def test_pure_kernel_ship_is_clean(self):
        result = flow_over("purepkg")
        assert not any(
            "run_pure" in ff.finding.message
            for ff in purity_findings(result)
        )

    def test_partial_wrapped_kernel_is_unwrapped(self):
        result = flow_over("purepkg")
        partials = [
            ff.finding
            for ff in purity_findings(result)
            if "run_partial" in ff.finding.message
        ]
        assert partials, "functools.partial must not hide the kernel"
        assert any("_CACHE" in f.message for f in partials)

    def test_lambda_ship_is_flagged_outright(self):
        result = flow_over("purepkg")
        lambdas = [
            ff.finding
            for ff in purity_findings(result)
            if "run_lambda" in ff.finding.message
        ]
        assert len(lambdas) == 1
        assert "lambda" in lambdas[0].message
        assert "picklable" in lambdas[0].message


class TestExecutionPlanShips:
    def test_rng_kernel_through_var_typed_plan(self):
        result = flow_over("planpkg")
        tiles = [
            ff.finding
            for ff in purity_findings(result)
            if "run_tiles" in ff.finding.message
        ]
        assert len(tiles) == 1
        assert "global-rng" in tiles[0].message
        assert "random.random" in tiles[0].message

    def test_direct_constructed_plan_with_pure_kernel_is_clean(self):
        result = flow_over("planpkg")
        assert not any(
            "run_squares" in ff.finding.message
            for ff in purity_findings(result)
        )

    def test_lambda_through_plan_stream(self):
        result = flow_over("planpkg")
        lambdas = [
            ff.finding
            for ff in purity_findings(result)
            if "run_lambda" in ff.finding.message
        ]
        assert len(lambdas) == 1

    def test_non_plan_stream_method_is_not_a_ship_site(self):
        # Scheduler.stream shares the method name but not the class; the
        # impure jitter_kernel it receives must produce no ship finding.
        result = flow_over("planpkg")
        assert not any(
            "run_scheduler" in ff.finding.message
            for ff in purity_findings(result)
        )


class TestSuppressionAtShipSite:
    def test_inline_disable_on_ship_line(self, tmp_path):
        write_package(
            tmp_path,
            "shippkg",
            {
                "kernels": """
                    STATE = {}


                    def kernel(i: int) -> int:
                        STATE[i] = i
                        return i
                    """,
                "driver": """
                    from concurrent.futures import ProcessPoolExecutor

                    from shippkg.kernels import kernel


                    def run(n: int) -> None:
                        with ProcessPoolExecutor() as pool:
                            for i in range(n):
                                pool.submit(kernel, i)  # pushlint: disable=flow-parallel-purity
                    """,
            },
        )
        result = run_flow([tmp_path / "shippkg"])
        purity = [
            ff
            for ff in result.all_findings
            if ff.finding.rule_id == "flow-parallel-purity"
        ]
        assert purity, "finding must still be discovered"
        assert all(ff.suppressed for ff in purity)
        assert result.findings == []


class TestRealTreeBlockingKernels:
    def test_sharded_blocking_kernels_are_parallel_pure(self):
        result = run_flow([SRC])
        purity = [
            ff
            for ff in result.all_findings
            if ff.finding.rule_id == "flow-parallel-purity"
        ]
        offenders = [
            ff.finding
            for ff in purity
            if "candidate_distance_tile" in ff.finding.message
            or "cut_silhouette_tile" in ff.finding.message
        ]
        assert offenders == [], [str(f) for f in offenders]


def test_module_level_mutable_global_requires_global_decl(tmp_path):
    # Rebinding a module name without `global` creates a local: not a write.
    write_package(
        tmp_path,
        "localpkg",
        {
            "kernels": """
                LIMIT = 10


                def kernel(i: int) -> int:
                    LIMIT = i  # local shadow, not module state
                    return LIMIT
                """,
            "driver": """
                from concurrent.futures import ProcessPoolExecutor

                from localpkg.kernels import kernel


                def run(n: int) -> None:
                    with ProcessPoolExecutor() as pool:
                        for i in range(n):
                            pool.submit(kernel, i)
                """,
        },
    )
    result = run_flow([tmp_path / "localpkg"])
    assert result.findings == []


def test_global_decl_assignment_is_a_write(tmp_path):
    write_package(
        tmp_path,
        "globalpkg",
        {
            "kernels": """
                COUNTER = 0


                def kernel(i: int) -> int:
                    global COUNTER
                    COUNTER = COUNTER + i
                    return COUNTER
                """,
            "driver": """
                from concurrent.futures import ProcessPoolExecutor

                from globalpkg.kernels import kernel


                def run(n: int) -> None:
                    with ProcessPoolExecutor() as pool:
                        for i in range(n):
                            pool.submit(kernel, i)
                """,
        },
    )
    result = run_flow([tmp_path / "globalpkg"])
    assert len(result.findings) == 1
    assert "COUNTER" in result.findings[0].message
    assert "global-assign" in result.findings[0].message
