"""The interprocedural taint pass on the synthetic fixture corpus.

The central claim these tests pin down: the sink modules are clean under
every per-file rule, so the flow findings reported on them are findings
the per-file engine *provably cannot produce*.
"""

from pathlib import Path

from repro.analysis import AnalysisEngine
from repro.analysis.flow import run_flow
from repro.analysis.flow.taint import SINK_NAME_RE, _is_sink

from tests.analysis.flow.conftest import FIXTURES, flow_over, write_package


def taint_findings(result):
    return [
        ff
        for ff in result.all_findings
        if ff.finding.rule_id == "flow-nondet-taint"
    ]


class TestTaintPkg:
    def test_sink_module_is_per_file_clean(self):
        # The proof that the flow pass sees something per-file rules can't.
        result = AnalysisEngine().run([FIXTURES / "taintpkg" / "reporters.py"])
        assert result.ok, [str(f) for f in result.findings]

    def test_wallclock_taint_reaches_sink_through_two_modules(self):
        result = flow_over("taintpkg")
        wall = [
            ff
            for ff in taint_findings(result)
            if not ff.suppressed
            and "format_report" in ff.finding.message
            and ff.finding.message.count("wall-clock")
        ]
        assert len(wall) == 1
        finding = wall[0].finding
        assert finding.path.endswith("taintpkg/reporters.py")
        assert "time.time" in finding.message
        # Chain runs sink -> helper -> timestamp -> _raw_now -> source.
        assert len(finding.chain) == 5
        assert "format_report" in finding.chain[0]
        assert "build_row" in finding.chain[1]
        assert "timestamp" in finding.chain[2]
        assert "_raw_now" in finding.chain[3]
        assert "wall-clock time.time" in finding.chain[-1]

    def test_unsorted_listdir_taints_sink(self):
        result = flow_over("taintpkg")
        fs = [
            ff
            for ff in taint_findings(result)
            if "fs-order" in ff.finding.message and not ff.suppressed
        ]
        assert len(fs) == 1
        assert "os.listdir" in fs[0].finding.message
        assert "scan_dir" in fs[0].finding.chain[1]

    def test_sorted_listdir_is_not_a_source(self):
        result = flow_over("taintpkg")
        assert not any(
            "format_clean" in ff.finding.message
            for ff in result.all_findings
        )

    def test_suppression_on_sink_line_silences_finding(self):
        result = flow_over("taintpkg")
        sanctioned = [
            ff
            for ff in taint_findings(result)
            if "format_sanctioned" in ff.finding.message
        ]
        assert sanctioned, "the suppressed finding must still be discovered"
        assert all(ff.suppressed for ff in sanctioned)
        assert all(
            "format_sanctioned" not in f.message for f in result.findings
        )
        assert result.suppressed >= len(sanctioned)


class TestSuppressionAtSource:
    def test_source_line_suppression_sanctions_everywhere(self, tmp_path):
        write_package(
            tmp_path,
            "srcpkg",
            {
                "clock": """
                    import time


                    def now() -> float:
                        return time.time()  # pushlint: disable=flow-nondet-taint
                    """,
                "sink": """
                    from srcpkg.clock import now


                    def format_out() -> str:
                        return str(now())
                    """,
            },
        )
        result = run_flow([tmp_path / "srcpkg"])
        assert result.findings == []
        assert result.all_findings == []  # sanctioned at the source, not hidden


class TestShimPkg:
    def test_taint_flows_through_getattr_shim_and_self_call(self):
        result = flow_over("shimpkg")
        active = [ff for ff in taint_findings(result) if not ff.suppressed]
        assert len(active) == 1
        finding = active[0].finding
        assert "render_status" in finding.message
        # self.poll() resolved to Widget.poll, then through the legacy
        # shim's __getattr__ to shimpkg.modern.tick.
        assert "Widget.poll" in finding.chain[1]
        assert "modern.tick" in finding.chain[2]

    def test_clean_path_through_shim_stays_clean(self):
        result = flow_over("shimpkg")
        assert not any(
            "render_steady" in ff.finding.message
            for ff in result.all_findings
        )


class TestSinkNaming:
    def test_stage_methods_and_miner_run_are_stage_sinks(self):
        assert _is_sink("PushAdMiner.stage_distances") == "pipeline stage"
        assert _is_sink("PushAdMiner.run") == "pipeline stage"
        assert _is_sink("OtherClass.run") is None

    def test_emit_surface_names(self):
        for name in (
            "format_human",
            "render_table",
            "save_records",
            "to_json",
            "emit",
            "summary_markdown",
            "figure6_svg",
            "trace_to_json",
        ):
            assert SINK_NAME_RE.search(name), name
        for name in ("compute", "distances", "informative", "transform"):
            assert not SINK_NAME_RE.search(name), name


def test_findings_are_deterministic():
    first = flow_over("taintpkg", "shimpkg")
    second = flow_over("taintpkg", "shimpkg")
    assert [ff.finding for ff in first.all_findings] == [
        ff.finding for ff in second.all_findings
    ]
