"""Helpers for the whole-program (flow) analysis tests."""

import textwrap
from pathlib import Path
from typing import Dict

import pytest

from repro.analysis.flow import ProjectIndex, run_flow

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def build_index(*packages: str) -> ProjectIndex:
    """Index one or more fixture packages by directory name."""
    return ProjectIndex.build([FIXTURES / pkg for pkg in packages])


def flow_over(*packages: str):
    return run_flow([FIXTURES / pkg for pkg in packages])


def write_package(root: Path, name: str, files: Dict[str, str]) -> Path:
    """Materialize a synthetic package (module name -> source) under root."""
    pkg = root / name
    pkg.mkdir(parents=True, exist_ok=True)
    (pkg / "__init__.py").write_text('"""synthetic."""\n')
    for module, source in files.items():
        (pkg / f"{module}.py").write_text(textwrap.dedent(source))
    return pkg


@pytest.fixture
def fixtures_dir() -> Path:
    return FIXTURES
