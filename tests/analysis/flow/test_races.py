"""The shared-state race + unordered-reduction passes on racepkg."""

from repro.analysis import AnalysisEngine
from repro.analysis.flow import run_flow

from tests.analysis.flow.conftest import FIXTURES, flow_over, write_package


def by_rule(result, rule_id):
    return [ff for ff in result.all_findings if ff.finding.rule_id == rule_id]


def races(result):
    return by_rule(result, "flow-shared-state-race")


def reductions(result):
    return by_rule(result, "flow-unordered-reduction")


class TestFixtureHygiene:
    def test_racepkg_is_per_file_clean(self):
        result = AnalysisEngine().run([FIXTURES / "racepkg"])
        assert result.ok, [str(f) for f in result.findings]


class TestSharedStateRaces:
    def test_kernel_kernel_write_write_race(self):
        result = flow_over("racepkg")
        pair = [
            ff.finding
            for ff in races(result)
            if "run_pair" in ff.finding.message
        ]
        assert len(pair) == 1
        finding = pair[0]
        assert "write-write" in finding.message
        assert "racepkg.kernels._PROGRESS" in finding.message
        assert "tally_kernel" in finding.message
        assert "count_kernel" in finding.message
        # Reported at the ship site inside the orchestrator, with both
        # parties' chains concatenated.
        assert finding.path.endswith("racepkg/driver.py")
        writes = [hop for hop in finding.chain if hop.startswith("writes ")]
        assert len(writes) == 2

    def test_kernel_orchestrator_read_write_race(self):
        result = flow_over("racepkg")
        mode = [
            ff.finding
            for ff in races(result)
            if "run_mode" in ff.finding.message
        ]
        assert len(mode) == 1
        finding = mode[0]
        assert "read-write" in finding.message
        assert "racepkg.kernels.CONFIG" in finding.message
        assert "between submit and join" in finding.message
        assert "read_kernel" in finding.message

    def test_same_kernel_shipped_twice_is_one_party(self):
        # run_repeat ships tally_kernel from two sites; a kernel cannot
        # race its own per-process copy, so the race pass stays silent
        # (the purity pass still reports the impurity itself).
        result = flow_over("racepkg")
        assert not any(
            "run_repeat" in ff.finding.message for ff in races(result)
        )
        assert any(
            "run_repeat" in str(ff.finding)
            or ff.finding.line in (31, 32)
            for ff in result.all_findings
            if ff.finding.rule_id == "flow-parallel-purity"
        )

    def test_pure_kernel_group_is_clean(self):
        result = flow_over("racepkg")
        assert not any(
            "run_clean" in ff.finding.message for ff in races(result)
        )

    def test_suppression_on_ship_line(self, tmp_path):
        write_package(
            tmp_path,
            "sanctpkg",
            {
                "kernels": """
                    STATE = {}


                    def writer(i: int) -> int:
                        STATE[i] = i
                        return i


                    def reader(i: int) -> int:
                        return STATE.get(i, 0)
                    """,
                "driver": """
                    from concurrent.futures import ProcessPoolExecutor

                    from sanctpkg.kernels import reader, writer


                    def run(n: int) -> None:
                        with ProcessPoolExecutor() as pool:
                            for i in range(n):
                                pool.submit(writer, i)  # pushlint: disable=flow-shared-state-race,flow-parallel-purity
                                pool.submit(reader, i)  # pushlint: disable=flow-shared-state-race
                    """,
            },
        )
        result = run_flow([tmp_path / "sanctpkg"])
        found = races(result)
        assert found, "race must still be discovered"
        assert all(ff.suppressed for ff in found)
        assert not any(
            ff.finding.rule_id == "flow-shared-state-race"
            for ff in result.all_findings
            if not ff.suppressed
        )


class TestUnorderedReductions:
    def test_as_completed_reaching_emit_sink(self):
        result = flow_over("racepkg")
        totals = [
            ff.finding
            for ff in reductions(result)
            if "emit_totals" in ff.finding.message
        ]
        assert len(totals) == 1
        finding = totals[0]
        assert "completion-order" in finding.message
        assert "concurrent.futures.as_completed" in finding.message
        # The merge lives one hop away in _gather; the chain shows it.
        assert any("_gather" in hop for hop in finding.chain)
        assert "merge" in finding.chain[-1]

    def test_imap_unordered_reaching_stage_boundary(self):
        result = flow_over("racepkg")
        stage = [
            ff.finding
            for ff in reductions(result)
            if "stage_collect" in ff.finding.message
        ]
        assert len(stage) == 1
        assert "pipeline stage" in stage[0].message
        assert ".imap_unordered" in stage[0].message

    def test_float_sum_over_set(self):
        result = flow_over("racepkg")
        floats = [
            ff.finding
            for ff in reductions(result)
            if "emit_float_total" in ff.finding.message
        ]
        assert len(floats) == 1
        assert "float-accum" in floats[0].message
        assert "sum(set)" in floats[0].message

    def test_sanctioned_patterns_stay_silent(self):
        result = flow_over("racepkg")
        messages = [ff.finding.message for ff in reductions(result)]
        # Submission-order gather, sorted() wrap, math.fsum: no merge
        # source; the disable directive on the merge line sanctions
        # emit_sanctioned for every sink that reaches it.
        for clean in (
            "emit_submission_order",
            "emit_sorted_merge",
            "emit_fsum_total",
            "emit_sanctioned",
        ):
            assert not any(clean in m for m in messages), clean
