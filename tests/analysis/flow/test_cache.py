"""The content-hash incremental summary cache."""

import json

from repro.analysis.flow import ProjectIndex, SummaryCache

from tests.analysis.flow.conftest import write_package

PKG = {
    "alpha": """
        def one() -> int:
            return 1
        """,
    "beta": """
        from cachepkg.alpha import one


        def two() -> int:
            return one() + one()
        """,
    "gamma": """
        def three() -> int:
            return 3
        """,
}


def test_warm_run_parses_nothing(tmp_path):
    pkg = write_package(tmp_path, "cachepkg", PKG)
    cache_file = tmp_path / "cache.json"

    cache = SummaryCache(cache_file)
    cold = ProjectIndex.build([pkg], cache=cache)
    assert cold.parsed == 4  # three modules + __init__
    assert cold.cached == 0
    cache.save()
    assert cache_file.exists()

    warm = ProjectIndex.build([pkg], cache=SummaryCache(cache_file))
    assert warm.parsed == 0
    assert warm.cached == 4
    assert warm.modules.keys() == cold.modules.keys()


def test_only_changed_file_reparses(tmp_path):
    pkg = write_package(tmp_path, "cachepkg", PKG)
    cache_file = tmp_path / "cache.json"
    cache = SummaryCache(cache_file)
    ProjectIndex.build([pkg], cache=cache)
    cache.save()

    (pkg / "gamma.py").write_text("def three() -> int:\n    return 33\n")
    cache = SummaryCache(cache_file)
    index = ProjectIndex.build([pkg], cache=cache)
    assert index.parsed == 1
    assert index.cached == 3
    assert "cachepkg.gamma" in index.modules


def test_cached_and_parsed_summaries_are_identical(tmp_path):
    pkg = write_package(tmp_path, "cachepkg", PKG)
    cache_file = tmp_path / "cache.json"
    cache = SummaryCache(cache_file)
    fresh = ProjectIndex.build([pkg], cache=cache)
    cache.save()

    warm = ProjectIndex.build([pkg], cache=SummaryCache(cache_file))
    for module in fresh.modules:
        assert warm.modules[module].to_dict() == fresh.modules[module].to_dict()


def test_corrupt_cache_is_ignored(tmp_path):
    pkg = write_package(tmp_path, "cachepkg", PKG)
    cache_file = tmp_path / "cache.json"
    cache_file.write_text("{not json")
    index = ProjectIndex.build([pkg], cache=SummaryCache(cache_file))
    assert index.parsed == 4


def test_version_mismatch_invalidates_entries(tmp_path):
    pkg = write_package(tmp_path, "cachepkg", PKG)
    cache_file = tmp_path / "cache.json"
    cache = SummaryCache(cache_file)
    ProjectIndex.build([pkg], cache=cache)
    cache.save()

    payload = json.loads(cache_file.read_text())
    for entry in payload["entries"].values():
        entry["summary"]["version"] = -1
    cache_file.write_text(json.dumps(payload))

    index = ProjectIndex.build([pkg], cache=SummaryCache(cache_file))
    assert index.parsed == 4
    assert index.cached == 0


def test_cache_file_is_deterministic(tmp_path):
    pkg = write_package(tmp_path, "cachepkg", PKG)
    first_file = tmp_path / "a.json"
    second_file = tmp_path / "b.json"
    for cache_file in (first_file, second_file):
        cache = SummaryCache(cache_file)
        ProjectIndex.build([pkg], cache=cache)
        cache.save()
    assert first_file.read_text() == second_file.read_text()
