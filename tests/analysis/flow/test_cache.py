"""The content-hash incremental summary cache."""

import json

from repro.analysis.flow import ProjectIndex, SummaryCache

from tests.analysis.flow.conftest import write_package

PKG = {
    "alpha": """
        def one() -> int:
            return 1
        """,
    "beta": """
        from cachepkg.alpha import one


        def two() -> int:
            return one() + one()
        """,
    "gamma": """
        def three() -> int:
            return 3
        """,
}


def test_warm_run_parses_nothing(tmp_path):
    pkg = write_package(tmp_path, "cachepkg", PKG)
    cache_file = tmp_path / "cache.json"

    cache = SummaryCache(cache_file)
    cold = ProjectIndex.build([pkg], cache=cache)
    assert cold.parsed == 4  # three modules + __init__
    assert cold.cached == 0
    cache.save()
    assert cache_file.exists()

    warm = ProjectIndex.build([pkg], cache=SummaryCache(cache_file))
    assert warm.parsed == 0
    assert warm.cached == 4
    assert warm.modules.keys() == cold.modules.keys()


def test_only_changed_file_reparses(tmp_path):
    pkg = write_package(tmp_path, "cachepkg", PKG)
    cache_file = tmp_path / "cache.json"
    cache = SummaryCache(cache_file)
    ProjectIndex.build([pkg], cache=cache)
    cache.save()

    (pkg / "gamma.py").write_text("def three() -> int:\n    return 33\n")
    cache = SummaryCache(cache_file)
    index = ProjectIndex.build([pkg], cache=cache)
    assert index.parsed == 1
    assert index.cached == 3
    assert "cachepkg.gamma" in index.modules


def test_cached_and_parsed_summaries_are_identical(tmp_path):
    pkg = write_package(tmp_path, "cachepkg", PKG)
    cache_file = tmp_path / "cache.json"
    cache = SummaryCache(cache_file)
    fresh = ProjectIndex.build([pkg], cache=cache)
    cache.save()

    warm = ProjectIndex.build([pkg], cache=SummaryCache(cache_file))
    for module in fresh.modules:
        assert warm.modules[module].to_dict() == fresh.modules[module].to_dict()


def test_corrupt_cache_is_ignored(tmp_path):
    pkg = write_package(tmp_path, "cachepkg", PKG)
    cache_file = tmp_path / "cache.json"
    cache_file.write_text("{not json")
    index = ProjectIndex.build([pkg], cache=SummaryCache(cache_file))
    assert index.parsed == 4


def test_version_mismatch_invalidates_entries(tmp_path):
    pkg = write_package(tmp_path, "cachepkg", PKG)
    cache_file = tmp_path / "cache.json"
    cache = SummaryCache(cache_file)
    ProjectIndex.build([pkg], cache=cache)
    cache.save()

    payload = json.loads(cache_file.read_text())
    for entry in payload["entries"].values():
        entry["summary"]["version"] = -1
    cache_file.write_text(json.dumps(payload))

    index = ProjectIndex.build([pkg], cache=SummaryCache(cache_file))
    assert index.parsed == 4
    assert index.cached == 0


def test_cache_file_is_deterministic(tmp_path):
    pkg = write_package(tmp_path, "cachepkg", PKG)
    first_file = tmp_path / "a.json"
    second_file = tmp_path / "b.json"
    for cache_file in (first_file, second_file):
        cache = SummaryCache(cache_file)
        ProjectIndex.build([pkg], cache=cache)
        cache.save()
    assert first_file.read_text() == second_file.read_text()


def test_ruleset_mismatch_invalidates_whole_cache(tmp_path):
    # A cache written by a different ruleset (new rule, changed summary
    # schema, edited description) must be dropped wholesale: its
    # summaries may lack facts the new passes need.
    pkg = write_package(tmp_path, "cachepkg", PKG)
    cache_file = tmp_path / "cache.json"
    cache = SummaryCache(cache_file)
    ProjectIndex.build([pkg], cache=cache)
    cache.save()

    payload = json.loads(cache_file.read_text())
    assert payload["ruleset"]  # fingerprint is recorded
    payload["ruleset"] = "0" * len(payload["ruleset"])
    cache_file.write_text(json.dumps(payload))

    index = ProjectIndex.build([pkg], cache=SummaryCache(cache_file))
    assert index.parsed == 4
    assert index.cached == 0


def test_ruleset_fingerprint_is_stable_within_a_version():
    from repro.analysis.flow import ruleset_fingerprint

    assert ruleset_fingerprint() == ruleset_fingerprint()
    assert len(ruleset_fingerprint()) == 16  # blake2b-8 hex


def test_parallel_cold_build_is_byte_identical(tmp_path):
    # The cold parse fans out over an ExecutionPlan; worker count must
    # change neither the index contents nor one byte of the saved cache.
    big = dict(PKG)
    for i in range(12):
        big[f"extra{i}"] = f"""
            def f{i}() -> int:
                return {i}
            """
    pkg = write_package(tmp_path, "cachepkg", big)

    caches = {}
    indexes = {}
    for workers in (1, 2, 4):
        cache_file = tmp_path / f"cache-w{workers}.json"
        cache = SummaryCache(cache_file)
        indexes[workers] = ProjectIndex.build([pkg], cache=cache, workers=workers)
        cache.save()
        caches[workers] = cache_file.read_bytes()

    assert caches[1] == caches[2] == caches[4]
    for workers in (2, 4):
        assert indexes[workers].modules.keys() == indexes[1].modules.keys()
        for module in indexes[1].modules:
            assert (
                indexes[workers].modules[module].to_dict()
                == indexes[1].modules[module].to_dict()
            )


def test_v2_summary_payload_is_wholesale_invalidated(tmp_path):
    # Regression for the v3 schema bump: a cache whose entries carry
    # version-2 summaries (written before the shape/dtype facts existed)
    # has correct file hashes but lacks allocs/dtype_events/sorts — the
    # per-summary version gate must reject every entry even if the
    # envelope (cache version + ruleset fingerprint) were somehow valid.
    pkg = write_package(tmp_path, "cachepkg", PKG)
    cache_file = tmp_path / "cache.json"
    cache = SummaryCache(cache_file)
    ProjectIndex.build([pkg], cache=cache)
    cache.save()

    payload = json.loads(cache_file.read_text())
    for entry in payload["entries"].values():
        entry["summary"]["version"] = 2
        for fn in entry["summary"].get("functions", {}).values():
            for key in ("allocs", "dtype_events", "sorts", "params", "roles"):
                fn.pop(key, None)
    cache_file.write_text(json.dumps(payload))

    index = ProjectIndex.build([pkg], cache=SummaryCache(cache_file))
    assert index.parsed == 4
    assert index.cached == 0


def test_current_summary_version_is_v3():
    from repro.analysis.flow.summary import SUMMARY_VERSION

    assert SUMMARY_VERSION == 3


def test_changed_rule_description_invalidates_wholesale(tmp_path, monkeypatch):
    # The fingerprint folds in every registered rule's id + description,
    # so adding a pass (or editing what one means) drops warm caches
    # without any manual version bump.
    import repro.analysis.rules as rules_mod
    from repro.analysis.flow import ruleset_fingerprint

    pkg = write_package(tmp_path, "cachepkg", PKG)
    cache_file = tmp_path / "cache.json"
    cache = SummaryCache(cache_file)
    ProjectIndex.build([pkg], cache=cache)
    cache.save()
    before = ruleset_fingerprint()

    monkeypatch.setattr(rules_mod, "ALL_RULES", rules_mod.ALL_RULES[:-1])
    assert ruleset_fingerprint() != before
    index = ProjectIndex.build([pkg], cache=SummaryCache(cache_file))
    assert index.parsed == 4
    assert index.cached == 0
