"""CLI surface of the whole-program passes: --flow, --explain, filters."""

import json
import shutil

import pytest

from repro.analysis.cli import main

from tests.analysis.flow.conftest import FIXTURES


@pytest.fixture
def taint_tree(tmp_path):
    shutil.copytree(FIXTURES / "taintpkg", tmp_path / "taintpkg")
    return tmp_path / "taintpkg"


def run_cli(capsys, *argv):
    code = main([str(a) for a in argv])
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestFlowFlag:
    def test_flow_finds_interprocedural_taint(self, taint_tree, capsys):
        code, out, _ = run_cli(capsys, "--flow", "--no-flow-cache", taint_tree)
        assert code == 1
        assert "flow-nondet-taint" in out
        assert "via " in out  # chain hops rendered under the finding
        assert "module(s) indexed" in out

    def test_without_flow_the_sink_module_passes(self, taint_tree, capsys):
        code, out, _ = run_cli(capsys, taint_tree / "reporters.py")
        assert code == 0
        assert "no findings" in out

    def test_json_schema_v2_with_chains_and_stats(self, taint_tree, capsys):
        _, out, _ = run_cli(
            capsys, "--flow", "--no-flow-cache", "--format", "json", taint_tree
        )
        payload = json.loads(out)
        assert payload["schema"] == "repro-lint/2"
        assert payload["summary"]["flow"]["modules"] == 4
        flow = [
            f
            for f in payload["findings"]
            if f["rule"] == "flow-nondet-taint"
        ]
        assert flow
        assert all(len(f["chain"]) >= 2 for f in flow)

    def test_select_runs_flow_rules_in_isolation(self, taint_tree, capsys):
        code, out, _ = run_cli(
            capsys,
            "--flow",
            "--no-flow-cache",
            "--select",
            "flow-nondet-taint",
            taint_tree,
        )
        assert code == 1
        assert "flow-nondet-taint" in out
        # Per-file findings (the time.time in clockio) are deselected.
        assert "no-wallclock" not in out

    def test_ignore_skips_a_flow_pass(self, taint_tree, capsys):
        code, out, _ = run_cli(
            capsys,
            "--flow",
            "--no-flow-cache",
            "--select",
            "flow-nondet-taint,flow-parallel-purity",
            "--ignore",
            "flow-nondet-taint",
            taint_tree,
        )
        assert code == 0
        assert "flow-nondet-taint" not in out

    def test_list_rules_includes_flow_rules(self, capsys):
        code, out, _ = run_cli(capsys, "--list-rules")
        assert code == 0
        assert "flow-nondet-taint" in out
        assert "flow-parallel-purity" in out

    def test_cache_round_trip_via_cli(self, taint_tree, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        run_cli(capsys, "--flow", "--flow-cache", cache, taint_tree)
        assert cache.exists()
        _, out, _ = run_cli(capsys, "--flow", "--flow-cache", cache, taint_tree)
        assert "(0 parsed, 4 from cache)" in out


class TestExplain:
    def _fingerprint(self, capsys, tree):
        _, out, _ = run_cli(
            capsys, "--flow", "--no-flow-cache", "--format", "json", tree
        )
        payload = json.loads(out)
        flow = [
            f
            for f in payload["findings"]
            if f["rule"] == "flow-nondet-taint"
        ]
        return flow[0]

    def test_explain_by_fingerprint_prefix(self, taint_tree, capsys):
        finding = self._fingerprint(capsys, taint_tree)
        code, out, _ = run_cli(
            capsys,
            "--explain",
            finding["fingerprint"][:12],
            "--no-flow-cache",
            taint_tree,
        )
        assert code == 0
        assert "chain:" in out
        assert "wall-clock" in out or "fs-order" in out

    def test_explain_by_path_and_line(self, taint_tree, capsys):
        finding = self._fingerprint(capsys, taint_tree)
        code, out, _ = run_cli(
            capsys,
            "--explain",
            f"{finding['path']}:{finding['line']}",
            "--no-flow-cache",
            taint_tree,
        )
        assert code == 0
        assert "fingerprint:" in out

    def test_explain_shows_suppressed_findings(self, taint_tree, capsys):
        # format_sanctioned is silenced in normal output but explainable.
        _, out, _ = run_cli(
            capsys, "--flow", "--no-flow-cache", "--format", "json", taint_tree
        )
        assert "format_sanctioned" not in out
        code, out, _ = run_cli(
            capsys, "--explain", "nomatch", "--no-flow-cache", taint_tree
        )
        assert code == 2

    def test_explain_no_match_is_usage_error(self, taint_tree, capsys):
        code, _, err = run_cli(
            capsys, "--explain", "ffffffffffff", "--no-flow-cache", taint_tree
        )
        assert code == 2
        assert "no flow finding matches" in err


@pytest.fixture
def race_tree(tmp_path):
    # The marker makes tmp_path a project root, so finding paths (and
    # hence fingerprints) are "racepkg/..." — identical on every run.
    (tmp_path / "pyproject.toml").write_text("[tool.none]\n")
    shutil.copytree(FIXTURES / "racepkg", tmp_path / "racepkg")
    return tmp_path / "racepkg"


class TestFlowWorkers:
    def test_worker_count_never_changes_the_output(self, race_tree, capsys):
        outputs = {}
        for workers in (1, 2, 4):
            code, out, _ = run_cli(
                capsys,
                "--flow",
                "--no-flow-cache",
                "--format",
                "json",
                "--flow-workers",
                workers,
                race_tree,
            )
            assert code == 1
            outputs[workers] = out
        assert outputs[1] == outputs[2] == outputs[4]

    def test_zero_workers_is_a_usage_error(self, race_tree, capsys):
        code, _, err = run_cli(
            capsys, "--flow", "--flow-workers", 0, race_tree
        )
        assert code == 2
        assert "--flow-workers" in err


class TestExplainPrefixAmbiguity:
    def _fingerprints(self, capsys, tree):
        # Distinct fingerprints: repeated identical source lines (e.g.
        # the same ship statement in two orchestrators) legitimately
        # share one fingerprint and are not an ambiguity.
        _, out, _ = run_cli(
            capsys, "--flow", "--no-flow-cache", "--format", "json", tree
        )
        return sorted({f["fingerprint"] for f in json.loads(out)["findings"]})

    def test_ambiguous_prefix_lists_candidates_and_exits_2(
        self, race_tree, capsys
    ):
        fingerprints = self._fingerprints(capsys, race_tree)
        ambiguous = next(
            prefix
            for length in range(1, 17)
            for prefix in (f[:length] for f in fingerprints)
            if sum(f.startswith(prefix) for f in fingerprints) > 1
        )
        code, out, err = run_cli(
            capsys, "--explain", ambiguous, "--no-flow-cache", race_tree
        )
        assert code == 2
        assert "ambiguous fingerprint prefix" in err
        assert out == ""
        for fingerprint in fingerprints:
            if fingerprint.startswith(ambiguous):
                assert fingerprint in err

    def test_unique_prefix_explains_exactly_one(self, race_tree, capsys):
        fingerprints = self._fingerprints(capsys, race_tree)
        unique = next(
            f[:length]
            for length in range(1, 17)
            for f in fingerprints
            if sum(g.startswith(f[:length]) for g in fingerprints) == 1
        )
        code, out, _ = run_cli(
            capsys, "--explain", unique, "--no-flow-cache", race_tree
        )
        assert code == 0
        assert out.count("fingerprint:") == 1
        assert "chain:" in out
