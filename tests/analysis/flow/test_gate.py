"""The tier-1 flow gate: ``src/repro`` is clean under both flow passes.

Companion to ``tests/analysis/test_gate.py`` (the per-file gate): the
whole-program taint and purity passes must also report nothing on the
real tree, so nondeterminism cannot hide behind a call hop.
"""

from pathlib import Path

from repro.analysis.flow import run_flow

REPO_ROOT = Path(__file__).resolve().parents[3]
SRC = REPO_ROOT / "src" / "repro"


def test_src_repro_has_zero_flow_findings():
    result = run_flow([SRC])
    assert result.stats["modules"] > 100, "gate must see the whole tree"
    assert result.ok, "\n".join(
        f"{f.location} [{f.rule_id}] {f.message}\n  "
        + "\n  ".join(f.chain)
        for f in result.findings
    )


def test_no_sanctioned_flow_suppressions_accumulate():
    # Inline flow suppressions in src/repro are allowed but must stay
    # rare and deliberate; this ratchet stops silent accumulation.
    result = run_flow([SRC])
    assert result.suppressed <= 2, (
        "unexpected growth in flow suppressions; justify or fix instead"
    )


def test_flow_gate_is_deterministic():
    first = run_flow([SRC])
    second = run_flow([SRC])
    assert first.findings == second.findings
    assert [ff.finding for ff in first.all_findings] == [
        ff.finding for ff in second.all_findings
    ]
    assert first.stats == second.stats
