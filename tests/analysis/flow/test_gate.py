"""The tier-1 flow gate: ``src/repro`` is clean under all seven flow passes.

Companion to ``tests/analysis/test_gate.py`` (the per-file gate): the
whole-program taint, purity, race, reduction, dense-allocation, dtype-
promotion, and sort-stability passes must all report nothing on the real
tree, so neither nondeterminism nor a quadratic densification can hide
behind a call hop — or behind the composition of two individually-clean
kernels.
"""

from pathlib import Path

from repro.analysis.flow import run_flow
from repro.analysis.rules import FLOW_RULE_IDS

REPO_ROOT = Path(__file__).resolve().parents[3]
SRC = REPO_ROOT / "src" / "repro"


def test_src_repro_has_zero_flow_findings():
    result = run_flow([SRC])
    assert result.stats["modules"] > 100, "gate must see the whole tree"
    assert result.ok, "\n".join(
        f"{f.location} [{f.rule_id}] {f.message}\n  "
        + "\n  ".join(f.chain)
        for f in result.findings
    )


def test_gate_exercises_all_seven_passes():
    # The zero-findings gate only means something if every pass ran;
    # each flow rule id must be selected by default, including the race
    # and reduction passes.
    assert FLOW_RULE_IDS == (
        "flow-nondet-taint",
        "flow-parallel-purity",
        "flow-shared-state-race",
        "flow-unordered-reduction",
        "flow-dense-alloc",
        "flow-dtype-promotion",
        "flow-unstable-order",
    )
    result = run_flow([SRC])
    for rule_id in FLOW_RULE_IDS:
        assert not any(
            ff.finding.rule_id == rule_id and not ff.suppressed
            for ff in result.all_findings
        ), rule_id


def test_no_sanctioned_flow_suppressions_accumulate():
    # Inline flow suppressions in src/repro are allowed but must stay
    # rare and deliberate; this ratchet stops silent accumulation.
    result = run_flow([SRC])
    # 2 legacy sites + the 4 sanctioned flow-dense-alloc densifier/
    # component-budget sites added with the shape passes.
    assert result.suppressed <= 6, (
        "unexpected growth in flow suppressions; justify or fix instead"
    )


def test_flow_gate_is_deterministic():
    first = run_flow([SRC])
    second = run_flow([SRC])
    assert first.findings == second.findings
    assert [ff.finding for ff in first.all_findings] == [
        ff.finding for ff in second.all_findings
    ]
    assert first.stats == second.stats
