"""Worker kernels, one pure and two impure."""

from typing import Dict, List

_CACHE: Dict[int, int] = {}
_LOG: List[str] = []


def _memo(n: int) -> int:
    if n not in _CACHE:
        _CACHE[n] = n * n  # module-level mutation, invisible per-file
    return _CACHE[n]


def impure_kernel(lo: int, hi: int) -> int:
    _LOG.append(f"{lo}:{hi}")
    return sum(_memo(i) for i in range(lo, hi))


def pure_kernel(lo: int, hi: int) -> int:
    return sum(i * i for i in range(lo, hi))
