"""Ships kernels across the process boundary; per-file clean itself."""

from concurrent.futures import ProcessPoolExecutor
from functools import partial
from typing import List

from purepkg.kernels import impure_kernel, pure_kernel


def run_impure(n: int) -> List[int]:
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(impure_kernel, i, i + 1) for i in range(n)]
    return [f.result() for f in futures]


def run_pure(n: int) -> List[int]:
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(pure_kernel, i, i + 1) for i in range(n)]
    return [f.result() for f in futures]


def run_partial(n: int) -> List[int]:
    # functools.partial must unwrap to the underlying kernel.
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(partial(impure_kernel, 0), i) for i in range(n)]
    return [f.result() for f in futures]


def run_lambda(n: int) -> List[int]:
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(lambda i: i * i, i) for i in range(n)]
    return [f.result() for f in futures]
