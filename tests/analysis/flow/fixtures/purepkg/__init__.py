"""Synthetic package: impure callables shipped to worker processes.

The driver module is per-file clean — nothing in it reads clocks or
mutates globals — but the kernels it submits to a process pool do, which
only the whole-program purity pass can see.
"""
