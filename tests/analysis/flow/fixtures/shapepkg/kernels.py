"""Kernels shipped through the plan; the dense scratch hides in a helper."""

from typing import Any, Sequence, Tuple

import numpy as np

from shapepkg.plan import ExecutionPlan


def _scratch(n: int) -> np.ndarray:
    # Quadratic by what callers pass for n — classified via the
    # call-site extent fixpoint, not by this function alone.
    return np.zeros((n, n))


def bad_kernel(operands: Any, tile: Any) -> float:
    n = len(operands.members)
    work = _scratch(n)
    return float(work.sum())


def tile_kernel(operands: Any, tile: Any) -> np.ndarray:
    # The sanctioned streaming shape: O(tile * n), never O(n^2).
    n = len(operands.members)
    return np.zeros((tile.size, n))


def run(operands: Any, tiles: Sequence[Any]) -> Tuple[Any, Any]:
    dense = ExecutionPlan().stream(bad_kernel, operands, tiles)
    rows = ExecutionPlan().stream(tile_kernel, operands, tiles)
    return dense, rows
