"""A stand-in ExecutionPlan: the name is what the kernel scope keys on."""

from typing import Any, Callable, List, Sequence


class ExecutionPlan:
    def __init__(self, workers: int = 1):
        self.workers = workers

    def stream(
        self,
        kernel: Callable[..., Any],
        operands: Any,
        tiles: Sequence[Any],
    ) -> List[Any]:
        return [kernel(operands, tile) for tile in tiles]
