"""Dtype promotion cases: hidden float32 return, sanctioned precision cast."""

from typing import Any, Sequence

import numpy as np

from shapepkg.sparse import SparseGraph


def _embed(graph: SparseGraph) -> np.ndarray:
    # The hidden half of a promotion: float32 leaves through the return
    # value, so the combining site never names a dtype.
    return np.zeros((graph.n, 8), dtype=np.float32)


def stage_scores(graph: SparseGraph) -> np.ndarray:
    base = np.ones(graph.n)
    return base + _embed(graph)


def emit_compact(graph: SparseGraph, precision: str) -> np.ndarray:
    heavy = np.ones(graph.n)
    light = np.zeros(graph.n, dtype=np.float32)
    if precision == "float32":
        # Sanctioned: the mix is exactly what the precision knob asked for.
        return (heavy + light).astype(np.float32)
    return heavy


def emit_density(graph: SparseGraph) -> np.ndarray:
    hits = np.zeros(graph.n, dtype=np.int64)
    totals = np.full(graph.n, 2)
    return hits / totals


def emit_total(records: Sequence[Any], graph: SparseGraph) -> float:
    return sum(item.score for item in records)
