"""Sparse storage stand-in: the class-name prefix seeds the kernel region."""

import numpy as np


class SparseGraph:
    def __init__(self, n: int):
        self.n = n
        self.rows = np.arange(n)

    def degree(self) -> np.ndarray:
        # 1-D O(n): fine inside the sparse region.
        return np.zeros(self.n)

    def to_square(self) -> np.ndarray:
        # Sanctioned oracle densification: deliberately O(n^2).
        return np.zeros(  # pushlint: disable=flow-dense-alloc
            (self.n, self.n)
        )
