"""Sort-stability cases: unstable argsort feeding a merge, stable controls."""

from typing import Any, List, Sequence

import numpy as np


def _rank(scores: np.ndarray) -> np.ndarray:
    return np.argsort(scores)


def emit_ranking(scores: np.ndarray) -> List[int]:
    return list(_rank(scores))


def emit_stable(scores: np.ndarray) -> np.ndarray:
    return np.argsort(scores, kind="stable")


def emit_lexsorted(scores: np.ndarray) -> np.ndarray:
    return np.lexsort((scores,))


def merge_results(items: Sequence[Any]) -> List[Any]:
    return sorted(items, key=lambda it: it.score)


def emit_merged(items: Sequence[Any]) -> List[Any]:
    return merge_results(items)


def emit_paired(items: Sequence[Any]) -> List[Any]:
    return sorted(items, key=lambda it: (it.name, it.score))
