"""Fixture corpus for the shape/dtype passes (flow-dense-alloc,
flow-dtype-promotion, flow-unstable-order): every detector fires once,
every sanctioned pattern stays clean."""
