"""Back-compat shim: forwards moved names via module ``__getattr__``."""

from typing import Any

from shimpkg import modern as _modern

_MOVED = ("tick", "steady")


def __getattr__(name: str) -> Any:
    if name in _MOVED:
        return getattr(_modern, name)
    raise AttributeError(name)
