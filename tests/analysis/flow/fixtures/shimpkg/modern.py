"""The real home of the moved symbol."""

import time


def tick() -> float:
    return time.time()


def steady() -> int:
    return 7
