"""Synthetic package: a ``__getattr__`` re-export shim in the call path."""
