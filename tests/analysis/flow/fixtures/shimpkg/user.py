"""Calls the moved symbol through the shim; per-file clean itself."""

from shimpkg.legacy import steady, tick


class Widget:
    def poll(self) -> float:
        return tick()

    def render_status(self) -> str:
        # Sink: reaches time.time() through the shim AND through self.poll.
        return f"{self.poll()}"


def render_steady() -> str:
    return f"{steady()}"
