"""Wall-clock access buried behind a helper (taint source module)."""

import time


def _raw_now() -> float:
    return time.time()


def timestamp() -> float:
    """Looks innocent from the outside; reads the wall clock inside."""
    return _raw_now()
