"""Sink module: per-file clean, transitively tainted.

``format_report`` never touches ``time`` or ``os`` itself, so no per-file
rule can fire here; only the whole-program taint pass connects it to the
wall-clock read in ``clockio`` and the unsorted listing in ``helpers``.
"""

from typing import List

from taintpkg.helpers import build_row, scan_dir, scan_dir_sorted


def format_report(records: List[str], root: str) -> str:
    rows = [build_row(record) for record in records]
    files = scan_dir(root)
    return "\n".join(str(row) for row in rows) + "\n".join(files)


def format_clean(records: List[str], root: str) -> str:
    """A sink whose whole transitive closure is deterministic."""
    files = scan_dir_sorted(root)
    return "\n".join(records) + "\n".join(files)


def format_sanctioned(records: List[str], root: str) -> str:  # pushlint: disable=flow-nondet-taint
    """Same taint as format_report, silenced at the sink line."""
    rows = [build_row(record) for record in records]
    return "\n".join(str(row) for row in rows)
