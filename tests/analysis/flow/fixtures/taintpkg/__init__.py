"""Synthetic package: nondeterminism flows to a sink across modules.

Every *sink* module here is clean under the per-file rules — the taint
lives two call hops away — so any finding the flow pass reports on it is
one the per-file engine provably cannot see.
"""
