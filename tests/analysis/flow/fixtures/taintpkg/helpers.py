"""Middle layer: forwards taint without containing any source itself."""

import os
from typing import Dict, List

from taintpkg.clockio import timestamp


def build_row(record: str) -> Dict[str, object]:
    return {"record": record, "at": timestamp()}


def scan_dir(root: str) -> List[str]:
    # Unsorted filesystem enumeration: os-dependent ordering.
    return [name for name in os.listdir(root) if name.endswith(".json")]


def scan_dir_sorted(root: str) -> List[str]:
    # The sorted() wrapper makes the enumeration order-safe.
    return sorted(os.listdir(root))
