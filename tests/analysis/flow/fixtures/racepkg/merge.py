"""Order-sensitive merges feeding emit/stage boundaries."""

import math
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Iterable, List

from racepkg.kernels import pure_kernel


def _gather(n: int) -> List[int]:
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(pure_kernel, i, i + 1) for i in range(n)]
        return [f.result() for f in as_completed(futures)]


def emit_totals(n: int) -> str:
    return ",".join(str(v) for v in _gather(n))


def stage_collect(pool, jobs) -> List[int]:
    return list(pool.imap_unordered(pure_kernel, jobs))


def emit_submission_order(n: int) -> List[int]:
    # Tile-index merge: gathered in submission order, no merge source.
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(pure_kernel, i, i + 1) for i in range(n)]
    return [f.result() for f in futures]


def emit_sorted_merge(pool, jobs) -> str:
    # Canonical sort wrapped directly around the merge point: sanctioned.
    return ",".join(str(v) for v in sorted(pool.imap_unordered(pure_kernel, jobs)))


def emit_float_total(values: Iterable[float]) -> float:
    return sum({round(v, 6) for v in values})


def emit_fsum_total(values: Iterable[float]) -> float:
    # math.fsum is correctly rounded, hence order-independent: sanctioned.
    return math.fsum(sorted(values))


def emit_sanctioned(pool, jobs) -> int:
    # max() is order-insensitive, so completion order cannot leak out.
    return max(pool.imap_unordered(pure_kernel, jobs))  # pushlint: disable=flow-unordered-reduction
