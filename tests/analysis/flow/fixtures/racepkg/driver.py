"""Ships kernel pairs; the race pass checks the composition."""

from concurrent.futures import ProcessPoolExecutor
from typing import List

from racepkg import kernels
from racepkg.kernels import count_kernel, pure_kernel, read_kernel, tally_kernel


def run_pair(n: int) -> List[int]:
    # Two different kernels in flight at once, both writing _PROGRESS.
    with ProcessPoolExecutor() as pool:
        first = [pool.submit(tally_kernel, i) for i in range(n)]
        second = [pool.submit(count_kernel, i) for i in range(n)]
    return [f.result() for f in (*first, *second)]


def run_mode(n: int) -> List[str]:
    # The orchestrator flips CONFIG between submit and join while
    # read_kernel reads it: scheduling decides what each session sees.
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(read_kernel, i) for i in range(n)]
        kernels.CONFIG["mode"] = "fast"
    return [f.result() for f in futures]


def run_repeat(n: int) -> List[int]:
    # The same kernel shipped twice is ONE party: self-interleaving is
    # the purity pass's business, not a cross-party race.
    with ProcessPoolExecutor() as pool:
        first = [pool.submit(tally_kernel, i) for i in range(n)]
        second = [pool.submit(tally_kernel, i + n) for i in range(n)]
    return [f.result() for f in (*first, *second)]


def run_clean(n: int) -> List[int]:
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(pure_kernel, i, i + 1) for i in range(n)]
    return [f.result() for f in futures]
