"""Kernels sharing module-level state, plus a pure control."""

from typing import Dict

CONFIG: Dict[str, str] = {"mode": "slow"}
_PROGRESS: Dict[str, int] = {}


def tally_kernel(i: int) -> int:
    _PROGRESS["tally"] = _PROGRESS.get("tally", 0) + i
    return i


def count_kernel(i: int) -> int:
    _PROGRESS["count"] = i
    return i


def read_kernel(i: int) -> str:
    return f"{i}:{CONFIG['mode']}"


def pure_kernel(lo: int, hi: int) -> int:
    return sum(i * i for i in range(lo, hi))
