"""Synthetic package: concurrent parties sharing module-level state.

Every kernel here is individually simple; what breaks is the
*composition* — two different kernels in flight writing the same dict,
an orchestrator flipping config while a kernel reads it, and pool
results merged in completion order on the way to an emit boundary. Only
the whole-program race/reduction passes can see any of it.
"""
