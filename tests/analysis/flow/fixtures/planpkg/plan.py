"""A stand-in ExecutionPlan: the name is what the purity pass keys on."""

from typing import Any, Callable, List, Sequence


class ExecutionPlan:
    def __init__(self, workers: int = 1):
        self.workers = workers

    def stream(
        self,
        kernel: Callable[..., Any],
        operands: Sequence[Any],
        tiles: Sequence[Any],
    ) -> List[Any]:
        return [kernel(operands, tile) for tile in tiles]


class Scheduler:
    """NOT an ExecutionPlan: its stream() is no process boundary."""

    def stream(self, kernel: Callable[..., Any], items: Sequence[Any]) -> List[Any]:
        return [kernel(item) for item in items]
