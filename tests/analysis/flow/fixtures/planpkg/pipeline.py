"""Ships kernels through ExecutionPlan.stream; per-file clean itself."""

import random
from typing import Any, List, Optional, Sequence

from planpkg.plan import ExecutionPlan, Scheduler


def jitter_kernel(operands: Sequence[Any], tile: Any) -> float:
    return random.random()  # global RNG inside a worker payload


def square_kernel(operands: Sequence[Any], tile: int) -> int:
    return tile * tile


def run_tiles(tiles: Sequence[int], plan: Optional[ExecutionPlan] = None) -> List[Any]:
    plan = plan if plan is not None else ExecutionPlan()
    return plan.stream(jitter_kernel, (), tiles)


def run_squares(tiles: Sequence[int]) -> List[Any]:
    return ExecutionPlan().stream(square_kernel, (), tiles)


def run_lambda(tiles: Sequence[int]) -> List[Any]:
    plan = ExecutionPlan()
    return plan.stream(lambda operands, tile: tile, (), tiles)


def run_scheduler(tiles: Sequence[int]) -> List[Any]:
    # Same method name, different class: must NOT count as a ship site.
    return Scheduler().stream(jitter_kernel, tiles)
