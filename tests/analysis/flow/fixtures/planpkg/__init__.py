"""Synthetic package mirroring the repro.perf ExecutionPlan ship surface."""
