"""The shape/dtype passes: corpus coverage, sanctions, golden output.

The ``shapepkg`` fixture corpus exercises every new detector — a dense
allocation hidden behind a helper call, a float32/float64 promotion
hidden through a returned array, an unstable argsort feeding a merge —
and every sanctioned pattern (streaming ``tile x n`` kernels,
``precision``-guarded casts, ``kind="stable"`` sorts, tuple sort keys,
the suppressed densifier). The golden tests pin one finding per pass
byte-for-byte through the ``repro-lint/2`` JSON reporter and
``--explain``; the src/repro tests prove each inline sanction in the
real tree is load-bearing.
"""

import json
import shutil
import subprocess
import sys
from pathlib import Path

from repro.analysis.flow import ProjectIndex, run_flow
from repro.analysis.flow.dense import DenseAllocPass

from tests.analysis.flow.conftest import FIXTURES, flow_over, write_package

REPO_ROOT = Path(__file__).resolve().parents[3]
SRC = REPO_ROOT / "src" / "repro"

PLAN_SRC = """
    class ExecutionPlan:
        def stream(self, kernel, operands, tiles):
            return [kernel(operands, tile) for tile in tiles]
    """


def _by_rule(result, rule_id):
    return [f for f in result.findings if f.rule_id == rule_id]


class TestCorpusCoverage:
    def test_every_detector_fires_on_the_corpus(self):
        result = flow_over("shapepkg")
        assert len(_by_rule(result, "flow-dense-alloc")) == 1
        assert len(_by_rule(result, "flow-dtype-promotion")) == 3
        assert len(_by_rule(result, "flow-unstable-order")) == 3

    def test_dense_alloc_hidden_behind_a_helper_has_full_chain(self):
        (finding,) = _by_rule(flow_over("shapepkg"), "flow-dense-alloc")
        assert finding.path.endswith("shapepkg/kernels.py")
        assert "ExecutionPlan-shipped kernel" in finding.message
        assert "bad_kernel" in finding.chain[0]
        assert "_scratch" in finding.chain[1]
        assert finding.chain[-1].startswith("allocation numpy.zeros((n:big, n:big))")

    def test_promotion_hidden_through_a_returned_array(self):
        promotions = _by_rule(flow_over("shapepkg"), "flow-dtype-promotion")
        mix = [f for f in promotions if "float32/float64 mix" in f.message]
        assert len(mix) == 1
        assert "returned by 'shapepkg.promote._embed'" in mix[0].message
        assert mix[0].chain[-1].startswith("binop base + _embed(graph)")
        kinds = {f.chain[-1].split()[0] for f in promotions}
        assert kinds == {"binop", "div", "accum"}

    def test_unstable_sorts_cover_all_three_shapes(self):
        sorts = _by_rule(flow_over("shapepkg"), "flow-unstable-order")
        kinds = {f.chain[-1].split()[0] for f in sorts}
        assert kinds == {
            "unstable-argsort",
            "single-key-lexsort",
            "float-keyed-sort",
        }
        merged = [f for f in sorts if "emit_merged" in f.message]
        assert merged and "merge_results" in merged[0].chain[1]

    def test_sanctioned_patterns_stay_clean(self):
        result = flow_over("shapepkg")
        # tile x n streaming, kind="stable", tuple keys, precision-guarded
        # casts: none may appear in any finding or chain.
        rendered = "\n".join(
            f.message + "\n" + "\n".join(f.chain) for f in result.findings
        )
        assert "tile_kernel" not in rendered
        assert "emit_stable" not in rendered
        assert "emit_paired" not in rendered
        assert "emit_compact" not in rendered

    def test_suppressed_densifier_counts_as_suppressed(self):
        result = flow_over("shapepkg")
        suppressed = [ff for ff in result.all_findings if ff.suppressed]
        assert len(suppressed) == 1
        assert "to_square" in suppressed[0].finding.message
        assert result.suppressed == 1


class TestSanctionDeletion:
    def test_deleting_the_fixture_suppression_fires(self, tmp_path):
        shutil.copytree(FIXTURES / "shapepkg", tmp_path / "shapepkg")
        target = tmp_path / "shapepkg" / "sparse.py"
        text = target.read_text()
        assert "# pushlint: disable=flow-dense-alloc" in text
        target.write_text(
            text.replace("  # pushlint: disable=flow-dense-alloc", "")
        )
        result = run_flow([tmp_path / "shapepkg"])
        dense = _by_rule(result, "flow-dense-alloc")
        assert len(dense) == 2  # _scratch + the now-unsanctioned to_square
        assert any("to_square" in f.message for f in dense)

    def test_injected_dense_zeros_in_a_shipped_kernel_fires(self, tmp_path):
        write_package(
            tmp_path,
            "injpkg",
            {
                "plan": PLAN_SRC,
                "pipe": """
                    import numpy as np

                    from injpkg.plan import ExecutionPlan


                    def kernel(operands, tile):
                        n = len(operands)
                        return np.zeros((n, n))


                    def run(operands, tiles):
                        return ExecutionPlan().stream(kernel, operands, tiles)
                    """,
            },
        )
        result = run_flow([tmp_path / "injpkg"])
        (finding,) = _by_rule(result, "flow-dense-alloc")
        assert "injpkg.pipe.kernel" in finding.chain[0]
        assert finding.chain[-1].startswith("allocation numpy.zeros")

    def test_every_src_repro_sanction_is_load_bearing(self):
        # src/repro is clean only because each sanctioned Theta(n^2) site
        # carries an inline suppression; removing any one must resurface
        # its finding with the full chain.
        index = ProjectIndex.build([SRC])
        graph = index.callgraph()
        base = DenseAllocPass(index, graph).run()
        assert len(base) == 4, [ff.finding.location for ff in base]
        assert all(ff.suppressed for ff in base)
        for ff in base:
            finding = ff.finding
            summary = next(
                s for s in index.modules.values() if s.path == finding.path
            )
            saved = summary.suppressions._by_line.pop(finding.line)
            try:
                rerun = DenseAllocPass(index, graph).run()
                resurfaced = [
                    g.finding
                    for g in rerun
                    if not g.suppressed
                    and g.finding.fingerprint == finding.fingerprint
                ]
                assert resurfaced, finding.location
                assert len(resurfaced[0].chain) >= 2
            finally:
                summary.suppressions._by_line[finding.line] = saved


GOLDEN_JSON = {
    "flow-dense-alloc": (
        '{"chain": ["shapepkg.kernels.bad_kernel (shapepkg/kernels.py:16)", '
        '"shapepkg.kernels._scratch (shapepkg/kernels.py:10)", '
        '"allocation numpy.zeros((n:big, n:big)) (shapepkg/kernels.py:13)"], '
        '"column": 1, "fingerprint": "0e3cf0d2a4106023", "line": 13, '
        '"message": "O(n^2) allocation numpy.zeros((n:big, n:big)) in the '
        'sparse/parallel kernel region \\u2014 ExecutionPlan-shipped kernel, '
        "reachable from 'shapepkg.kernels.bad_kernel' in 1 call hop(s); "
        'stream O(tile*n) rows or keep condensed/sparse storage (--explain '
        'prints the chain)", "path": "shapepkg/kernels.py", '
        '"rule": "flow-dense-alloc", "severity": "error"}'
    ),
    "flow-dtype-promotion": (
        '{"chain": ["shapepkg.promote.stage_scores (shapepkg/promote.py:16)", '
        '"binop base + _embed(graph) (shapepkg/promote.py:18)"], '
        '"column": 1, "fingerprint": "946473807ac3f136", "line": 16, '
        '"message": "pipeline stage \'shapepkg.promote.stage_scores\' '
        "transitively reaches implicit float32/float64 mix promotes to "
        "float64 (float32 side returned by 'shapepkg.promote._embed'): "
        "base + _embed(graph) at shapepkg/promote.py:18 (0 call hop(s); "
        '--explain prints the chain)", "path": "shapepkg/promote.py", '
        '"rule": "flow-dtype-promotion", "severity": "error"}'
    ),
    "flow-unstable-order": (
        '{"chain": ["shapepkg.order.emit_ranking (shapepkg/order.py:12)", '
        '"shapepkg.order._rank (shapepkg/order.py:8)", '
        '"unstable-argsort numpy.argsort (shapepkg/order.py:9)"], '
        '"column": 1, "fingerprint": "9c3ba9d828bf878d", "line": 12, '
        '"message": "emit/serialization sink \'shapepkg.order.emit_ranking\' '
        "transitively reaches unstable-argsort numpy.argsort at "
        "shapepkg/order.py:9 \\u2014 default-kind sort is not stable under "
        'float ties; pass kind=\\"stable\\" (1 call hop(s); --explain prints '
        'the chain)", "path": "shapepkg/order.py", '
        '"rule": "flow-unstable-order", "severity": "error"}'
    ),
}

GOLDEN_EXPLAIN = (
    "shapepkg/kernels.py:13:1: error [flow-dense-alloc]\n"
    "  O(n^2) allocation numpy.zeros((n:big, n:big)) in the sparse/parallel "
    "kernel region — ExecutionPlan-shipped kernel, reachable from "
    "'shapepkg.kernels.bad_kernel' in 1 call hop(s); stream O(tile*n) rows "
    "or keep condensed/sparse storage (--explain prints the chain)\n"
    "  fingerprint: 0e3cf0d2a4106023\n"
    "  chain:\n"
    "    0. shapepkg.kernels.bad_kernel (shapepkg/kernels.py:16)\n"
    "    1. shapepkg.kernels._scratch (shapepkg/kernels.py:10)\n"
    "    2. allocation numpy.zeros((n:big, n:big)) (shapepkg/kernels.py:13)\n"
)


class TestGoldenOutput:
    """Byte-pinned reporter output: any drift in messages, chains, paths
    or fingerprints is a deliberate, reviewed change."""

    def _project_root(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[tool.none]\n")
        shutil.copytree(FIXTURES / "shapepkg", tmp_path / "shapepkg")
        return tmp_path

    def _run(self, root, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *argv, "shapepkg"],
            capture_output=True,
            text=True,
            cwd=root,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )

    def test_json_findings_are_byte_identical(self, tmp_path):
        root = self._project_root(tmp_path)
        proc = self._run(root, "--flow", "--no-flow-cache", "--format", "json")
        payload = json.loads(proc.stdout)
        assert payload["schema"] == "repro-lint/2"
        for rule_id, golden in GOLDEN_JSON.items():
            found = [f for f in payload["findings"] if f["rule"] == rule_id]
            assert found, rule_id
            assert json.dumps(found[0], sort_keys=True) == golden

    def test_explain_chain_is_byte_identical(self, tmp_path):
        root = self._project_root(tmp_path)
        proc = self._run(
            root, "--explain", "0e3cf0d2a4106023", "--no-flow-cache"
        )
        assert proc.returncode == 0
        assert proc.stdout == GOLDEN_EXPLAIN


class TestDeterminism:
    def test_shape_passes_are_deterministic(self):
        first = flow_over("shapepkg")
        second = flow_over("shapepkg")
        assert first.findings == second.findings
        assert [ff.finding for ff in first.all_findings] == [
            ff.finding for ff in second.all_findings
        ]
