"""Unit tests for no-mutable-default, no-bare-except, deterministic-emit,
and public-api-annotations."""

from repro.analysis.rules.annotations import PublicApiAnnotationsRule
from repro.analysis.rules.hygiene import NoBareExceptRule, NoMutableDefaultRule
from repro.analysis.rules.set_iteration import DeterministicEmitRule

from tests.analysis.conftest import check_snippet


class TestNoMutableDefault:
    def test_flags_literal_and_constructor_defaults(self):
        findings = check_snippet(
            NoMutableDefaultRule(),
            """
            def f(a=[], b={}, c=set(), d=dict(), e=[x for x in "ab"]):
                pass
            """,
        )
        assert len(findings) == 5

    def test_flags_kwonly_and_lambda_defaults(self):
        findings = check_snippet(
            NoMutableDefaultRule(),
            """
            def f(*, cache={}):
                pass

            g = lambda xs=[]: xs
            """,
        )
        assert len(findings) == 2

    def test_immutable_defaults_are_fine(self):
        findings = check_snippet(
            NoMutableDefaultRule(),
            """
            def f(a=None, b=0, c="x", d=(), e=frozenset()):
                pass
            """,
        )
        # frozenset() is immutable but set-like; the rule only targets the
        # genuinely mutable constructors.
        assert findings == []


class TestNoBareExcept:
    def test_flags_bare_except_only(self):
        findings = check_snippet(
            NoBareExceptRule(),
            """
            try:
                x = 1
            except:
                pass

            try:
                y = 2
            except ValueError:
                pass
            except (KeyError, TypeError) as exc:
                raise RuntimeError from exc
            """,
        )
        assert len(findings) == 1
        assert findings[0].line == 4


class TestDeterministicEmit:
    def test_flags_for_loop_over_set_literal(self):
        findings = check_snippet(
            DeterministicEmitRule(),
            """
            for item in {1, 2, 3}:
                print(item)
            """,
        )
        assert len(findings) == 1

    def test_flags_list_tuple_enumerate_and_join(self):
        findings = check_snippet(
            DeterministicEmitRule(),
            """
            a = list({1, 2})
            b = tuple(set(xs))
            c = enumerate({s for s in names})
            d = ",".join({"x", "y"})
            """,
        )
        assert len(findings) == 4

    def test_flags_list_comprehension_over_set(self):
        findings = check_snippet(
            DeterministicEmitRule(),
            "out = [f(x) for x in set(xs)]\n",
        )
        assert len(findings) == 1

    def test_order_insensitive_consumers_are_fine(self):
        findings = check_snippet(
            DeterministicEmitRule(),
            """
            a = sorted({3, 1, 2})
            b = len({1, 2})
            c = sum(x for x in {1, 2})
            d = max(set(xs))
            e = any(f(x) for x in {1, 2})
            f2 = sorted(x * 2 for x in {1, 2})
            """,
        )
        assert findings == []

    def test_set_to_set_transforms_are_fine(self):
        findings = check_snippet(
            DeterministicEmitRule(),
            """
            doubled = {x * 2 for x in {1, 2}}
            lookup = {x: x for x in set(xs)}
            """,
        )
        assert findings == []

    def test_plain_variable_iteration_is_out_of_scope(self):
        findings = check_snippet(
            DeterministicEmitRule(),
            """
            for x in xs:
                print(x)
            """,
        )
        assert findings == []


class TestPublicApiAnnotations:
    def test_flags_missing_params_and_return_in_core(self):
        findings = check_snippet(
            PublicApiAnnotationsRule(),
            """
            def table(dataset, limit: int = 5):
                return []
            """,
            module="repro.core.report",
        )
        assert len(findings) == 1
        assert "dataset" in findings[0].message
        assert "return" in findings[0].message
        assert "limit" not in findings[0].message

    def test_methods_skip_self_and_cls(self):
        findings = check_snippet(
            PublicApiAnnotationsRule(),
            """
            class Miner:
                def run(self, records) -> None:
                    pass

                @classmethod
                def build(cls) -> "Miner":
                    return cls()
            """,
            module="repro.core.pipeline",
        )
        assert len(findings) == 1
        assert "records" in findings[0].message

    def test_private_nested_and_non_core_are_exempt(self):
        code = """
        def _helper(x):
            pass

        def outer() -> None:
            def inner(y):
                pass
        """
        assert check_snippet(PublicApiAnnotationsRule(), code, module="repro.core.x") == []
        # Entirely out of scope outside repro.core:
        bad = "def f(x):\n    pass\n"
        assert check_snippet(PublicApiAnnotationsRule(), bad, module="repro.webenv.x") == []

    def test_fully_annotated_is_clean(self):
        findings = check_snippet(
            PublicApiAnnotationsRule(),
            """
            from typing import Any, List

            def rows(dataset: object, *extras: str, top: int = 2, **kw: Any) -> List[str]:
                return []
            """,
            module="repro.core.report",
        )
        assert findings == []
