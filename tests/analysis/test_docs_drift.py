"""Doc drift: every registered rule id must be documented.

docs/ANALYSIS.md is the operator-facing catalog; a rule that exists in
``ALL_RULES`` but not in the doc's rules table is invisible debt, and a
documented id that no longer exists misleads. Both directions are pinned.
"""

import re
from pathlib import Path

from repro.analysis import ALL_RULES

REPO_ROOT = Path(__file__).resolve().parents[2]
DOC = REPO_ROOT / "docs" / "ANALYSIS.md"

#: Rule ids rendered as inline code somewhere in the doc.
_CODE_SPAN = re.compile(r"`([a-z0-9-]+)`")


def documented_ids() -> set:
    text = DOC.read_text(encoding="utf-8")
    registered = {rule.id for rule in ALL_RULES}
    return {m for m in _CODE_SPAN.findall(text) if m in registered or "-" in m}


def test_doc_exists():
    assert DOC.is_file()


def test_every_registered_rule_is_documented():
    text = DOC.read_text(encoding="utf-8")
    missing = [rule.id for rule in ALL_RULES if f"`{rule.id}`" not in text]
    assert not missing, f"rules absent from docs/ANALYSIS.md: {missing}"


def test_flow_rules_have_their_own_section():
    text = DOC.read_text(encoding="utf-8")
    assert "--flow" in text
    assert "--explain" in text
    assert "flow-nondet-taint" in text
    assert "flow-parallel-purity" in text


def test_no_stale_rule_ids_in_rules_table():
    # Ids that *look like* pushlint rules (kebab-case inside backticks in
    # table rows starting with "| `") must all be registered.
    registered = {rule.id for rule in ALL_RULES}
    stale = []
    for line in DOC.read_text(encoding="utf-8").splitlines():
        if not line.lstrip().startswith("| `"):
            continue
        for rule_id in _CODE_SPAN.findall(line.split("|")[1]):
            if rule_id not in registered:
                stale.append(rule_id)
    assert not stale, f"documented but unregistered rule ids: {stale}"
