"""The tier-1 gate: ``src/repro`` must be pushlint-clean, with no baseline.

This is the machine-checked version of the DESIGN.md determinism claim:
no wall-clock reads, no unseeded RNG, no network imports, a clean package
DAG — across every module, forever. A finding here means a change
reintroduced a nondeterminism (or hygiene) bug; fix it rather than
baselining it.
"""

from pathlib import Path

from repro.analysis import ALL_RULES, AnalysisEngine
from repro.analysis.reporters import format_human

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"


def test_rule_catalog_is_complete():
    assert len(ALL_RULES) >= 8
    ids = {rule.id for rule in ALL_RULES}
    assert ids >= {
        "no-wallclock",
        "no-unseeded-rng",
        "no-network-imports",
        "import-layering",
        "no-mutable-default",
        "no-bare-except",
        "deterministic-emit",
        "public-api-annotations",
    }


def test_src_repro_has_zero_findings():
    engine = AnalysisEngine()  # all rules, NO baseline
    result = engine.run([SRC])
    assert result.files_checked > 50, "gate must actually see the codebase"
    assert result.ok, "\n" + format_human(result)


def test_benchmarks_and_scripts_have_zero_findings():
    # The gate covers everything that ships or measures: benchmark
    # drivers and repo scripts feed the paper's numbers too, so they hold
    # to the same per-file ruleset as src/repro (no baseline either).
    roots = [
        path
        for path in (REPO_ROOT / "benchmarks", REPO_ROOT / "scripts")
        if path.exists() and any(path.rglob("*.py"))
    ]
    assert roots, "benchmarks/ must exist and contain Python files"
    result = AnalysisEngine().run(roots)
    assert result.files_checked >= 1
    assert result.ok, "\n" + format_human(result)


def test_no_baseline_file_is_checked_in():
    # The gate above runs baseline-free, but also make sure nobody quietly
    # parks debt in a committed baseline: it must stay absent or empty.
    baseline = REPO_ROOT / "pushlint-baseline.json"
    if baseline.exists():
        from repro.analysis.baseline import Baseline

        assert len(Baseline.load(baseline)) == 0


def test_gate_runs_deterministically():
    first = AnalysisEngine().run([SRC])
    second = AnalysisEngine().run([SRC])
    assert first.findings == second.findings
    assert first.files_checked == second.files_checked
