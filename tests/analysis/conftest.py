"""Helpers for exercising pushlint rules on synthetic snippets."""

import textwrap
from typing import List

import pytest

from repro.analysis.finding import Finding
from repro.analysis.rules.base import Rule
from repro.analysis.source import ModuleSource


def check_snippet(
    rule: Rule, code: str, module: str = "repro.fake.mod"
) -> List[Finding]:
    """Run one rule over one dedented snippet and return its findings."""
    src = ModuleSource(textwrap.dedent(code), path=f"{module}.py", module=module)
    return list(rule.check(src))


@pytest.fixture
def snippet_checker():
    return check_snippet
