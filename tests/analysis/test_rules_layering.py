"""Unit tests for the import-layering rule (the package DAG)."""

from repro.analysis.rules.layering import ALLOWED_IMPORTS, ImportLayeringRule

from tests.analysis.conftest import check_snippet


def check(code, module):
    return check_snippet(ImportLayeringRule(), code, module=module)


class TestImportLayering:
    def test_core_must_not_import_simulated_web(self):
        for forbidden in ("webenv", "browser", "crawler"):
            findings = check(
                f"from repro.{forbidden} import anything\n",
                module="repro.core.records",
            )
            assert len(findings) == 1, forbidden
            assert f"repro.{forbidden}" in findings[0].message

    def test_core_may_import_util_and_blocklists(self):
        findings = check(
            """
            from repro.util.domains import effective_second_level_domain
            from repro.blocklists.base import UrlTruth
            from repro.core.records import WpnRecord
            """,
            module="repro.core.pipeline",
        )
        assert findings == []

    def test_util_imports_nothing_from_repro(self):
        findings = check(
            "from repro.core import records\n", module="repro.util.helpers"
        )
        assert len(findings) == 1
        # ... but util importing util is fine.
        assert check("from repro.util.rng import RngFactory\n", module="repro.util") == []

    def test_blocklists_must_not_import_core_at_runtime(self):
        findings = check(
            "from repro.core.records import WpnRecord\n",
            module="repro.blocklists.base",
        )
        assert len(findings) == 1

    def test_type_checking_imports_are_exempt(self):
        findings = check(
            """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from repro.core.records import WpnRecord
            """,
            module="repro.blocklists.base",
        )
        assert findings == []

    def test_relative_imports_resolve_to_the_same_package(self):
        assert check("from . import records\n", module="repro.core.pipeline") == []
        assert check("from .records import WpnRecord\n", module="repro.core.pipeline") == []

    def test_relative_import_reaching_the_root_is_flagged(self):
        findings = check("from .. import io\n", module="repro.util.helpers")
        assert len(findings) == 1

    def test_packages_must_not_import_toplevel_glue(self):
        findings = check("import repro.cli\n", module="repro.core.report")
        assert len(findings) == 1
        assert "glue" in findings[0].message

    def test_toplevel_modules_are_unconstrained(self):
        findings = check(
            """
            from repro.core import PushAdMiner
            from repro.crawler import run_crawl
            import repro.viz
            """,
            module="repro.cli",
        )
        assert findings == []

    def test_non_repro_imports_are_ignored(self):
        findings = check(
            "import numpy\nimport json\nfrom scipy import sparse\n",
            module="repro.util.stats",
        )
        assert findings == []

    def test_dag_is_acyclic(self):
        # The configured layering must itself be a DAG, or the rule is
        # enforcing something unsatisfiable.
        state = {}

        def visit(package):
            if state.get(package) == "done":
                return
            assert state.get(package) != "visiting", f"cycle through {package}"
            state[package] = "visiting"
            for dep in ALLOWED_IMPORTS[package]:
                visit(dep)
            state[package] = "done"

        for package in ALLOWED_IMPORTS:
            visit(package)
