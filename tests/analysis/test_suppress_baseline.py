"""Suppression directives, baseline budgets, and engine integration."""

import textwrap
from pathlib import Path

import pytest

from repro.analysis.baseline import Baseline
from repro.analysis.engine import AnalysisEngine, iter_python_files
from repro.analysis.finding import Finding, Severity
from repro.analysis.rules.hygiene import NoBareExceptRule
from repro.analysis.rules.wallclock import NoWallclockRule
from repro.analysis.source import ModuleSource
from repro.analysis.suppress import Suppressions


def make_source(code, module="repro.fake.mod"):
    return ModuleSource(textwrap.dedent(code), path=f"{module}.py", module=module)


class TestSuppressions:
    def test_line_directive_suppresses_named_rule(self):
        src = make_source(
            """
            import time

            x = time.time()  # pushlint: disable=no-wallclock
            y = time.time()
            """
        )
        engine = AnalysisEngine(rules=[NoWallclockRule()])
        findings, suppressed = engine.check_source(src)
        assert suppressed == 1
        assert [f.line for f in findings] == [5]

    def test_line_directive_without_rules_suppresses_everything(self):
        src = make_source("import time\nx = time.time()  # pushlint: disable\n")
        findings, suppressed = AnalysisEngine(rules=[NoWallclockRule()]).check_source(src)
        assert findings == [] and suppressed == 1

    def test_directive_for_other_rule_does_not_suppress(self):
        src = make_source(
            "import time\nx = time.time()  # pushlint: disable=no-bare-except\n"
        )
        findings, suppressed = AnalysisEngine(rules=[NoWallclockRule()]).check_source(src)
        assert len(findings) == 1 and suppressed == 0

    def test_file_directive(self):
        src = make_source(
            """
            # pushlint: disable-file=no-wallclock
            import time

            x = time.time()
            y = time.time()
            """
        )
        findings, suppressed = AnalysisEngine(rules=[NoWallclockRule()]).check_source(src)
        assert findings == [] and suppressed == 2

    def test_directive_inside_string_literal_is_inert(self):
        src = make_source(
            """
            import time

            doc = "example: # pushlint: disable=no-wallclock"
            x = time.time()
            """
        )
        findings, _ = AnalysisEngine(rules=[NoWallclockRule()]).check_source(src)
        assert len(findings) == 1

    def test_parse_of_multiple_rules(self):
        supp = Suppressions.from_source(
            "x = 1  # pushlint: disable=rule-a, rule-b\n"
        )
        assert supp.is_suppressed("rule-a", 1)
        assert supp.is_suppressed("rule-b", 1)
        assert not supp.is_suppressed("rule-c", 1)
        assert not supp.is_suppressed("rule-a", 2)


def finding(rule="r", path="p.py", line=1, text="x = 1"):
    return Finding(
        path=path,
        line=line,
        column=1,
        rule_id=rule,
        severity=Severity.ERROR,
        message="m",
        source_line=text,
    )


class TestBaseline:
    def test_roundtrip_and_budget(self, tmp_path):
        f1 = finding(line=3, text="a = 1")
        f2 = finding(line=9, text="b = 2")
        baseline = Baseline.from_findings([f1, f2])
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert len(loaded) == 2

        # Same findings at *different line numbers* still match...
        moved = [finding(line=30, text="a = 1"), finding(line=90, text="b = 2")]
        active, baselined = loaded.split(moved)
        assert active == [] and baselined == 2

    def test_budget_does_not_absorb_new_duplicates(self, tmp_path):
        f1 = finding(text="a = 1")
        baseline = Baseline.from_findings([f1])
        dupes = [finding(line=1, text="a = 1"), finding(line=2, text="a = 1")]
        active, baselined = baseline.split(dupes)
        assert baselined == 1
        assert len(active) == 1

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "nope.json")
        assert len(baseline) == 0
        active, baselined = baseline.split([finding()])
        assert len(active) == 1 and baselined == 0

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError):
            Baseline.load(path)

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ValueError):
            Baseline.load(path)


class TestEngineFiles:
    def test_run_over_tree_applies_baseline_and_reports_counts(self, tmp_path):
        pkg = tmp_path / "repro" / "demo"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text("import time\nx = time.time()\n")

        engine = AnalysisEngine(rules=[NoWallclockRule()])
        result = engine.run([tmp_path / "repro"])
        assert result.files_checked == 3
        assert len(result.findings) == 1
        assert not result.ok

        baseline = Baseline.from_findings(result.findings)
        rerun = AnalysisEngine(rules=[NoWallclockRule()], baseline=baseline).run(
            [tmp_path / "repro"]
        )
        assert rerun.ok
        assert rerun.baselined == 1

    def test_syntax_errors_become_parse_error_findings(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        result = AnalysisEngine(rules=[NoBareExceptRule()]).run([bad])
        assert [f.rule_id for f in result.findings] == ["parse-error"]
        assert result.findings[0].severity is Severity.ERROR

    def test_iter_python_files_skips_caches_and_dedups(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("")
        (tmp_path / "x.egg-info").mkdir()
        (tmp_path / "x.egg-info" / "junk.py").write_text("")
        (tmp_path / "a.py").write_text("")
        files = list(iter_python_files([tmp_path, tmp_path / "a.py"]))
        assert files == [tmp_path / "a.py"]

    def test_findings_sorted_deterministically(self, tmp_path):
        (tmp_path / "b.py").write_text("import time\nx = time.time()\n")
        (tmp_path / "a.py").write_text("import time\ny = time.time()\n")
        result = AnalysisEngine(rules=[NoWallclockRule()]).run([tmp_path])
        assert [f.path for f in result.findings] == sorted(
            f.path for f in result.findings
        )
