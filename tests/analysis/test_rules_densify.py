"""Unit tests for the no-matrix-densify rule."""

from repro.analysis.rules import ALL_RULES
from repro.analysis.rules.densify import NoMatrixDensifyRule

from tests.analysis.conftest import check_snippet


class TestNoMatrixDensify:
    def test_flags_todense_calls(self):
        findings = check_snippet(
            NoMatrixDensifyRule(),
            """
            import numpy as np

            def f(matrix):
                dense = np.asarray(matrix.todense())
                return dense
            """,
        )
        assert len(findings) == 1
        assert "toarray" in findings[0].message

    def test_flags_uncalled_attribute_too(self):
        findings = check_snippet(
            NoMatrixDensifyRule(),
            """
            def f(matrix):
                densify = matrix.todense
                return densify()
            """,
        )
        assert len(findings) == 1

    def test_toarray_is_fine(self):
        findings = check_snippet(
            NoMatrixDensifyRule(),
            """
            def f(matrix):
                return matrix.toarray()
            """,
        )
        assert findings == []

    def test_flags_condensed_to_square_call(self):
        findings = check_snippet(
            NoMatrixDensifyRule(),
            """
            from repro.perf import condensed_to_square

            def f(condensed, n):
                return condensed_to_square(condensed, n)
            """,
        )
        assert len(findings) == 1
        assert "O(n^2)" in findings[0].message

    def test_flags_attribute_qualified_call(self):
        findings = check_snippet(
            NoMatrixDensifyRule(),
            """
            import repro.perf as perf

            def f(condensed, n):
                return perf.condensed_to_square(condensed, n)
            """,
        )
        assert len(findings) == 1

    def test_import_and_reference_alone_are_fine(self):
        # Only calls densify; importing or forwarding the function doesn't.
        findings = check_snippet(
            NoMatrixDensifyRule(),
            """
            from repro.perf import condensed_to_square

            ORACLE_HELPERS = {"to_square": condensed_to_square}
            """,
        )
        assert findings == []

    def test_home_module_is_exempt(self):
        findings = check_snippet(
            NoMatrixDensifyRule(),
            """
            def square_to_condensed(square):
                return square


            def roundtrip(condensed, n):
                return condensed_to_square(condensed, n)
            """,
            module="repro.perf.condensed",
        )
        assert findings == []

    def test_registered(self):
        assert NoMatrixDensifyRule in ALL_RULES
        assert NoMatrixDensifyRule.id == "no-matrix-densify"
