"""Unit tests for the no-matrix-densify rule."""

from repro.analysis.rules import ALL_RULES
from repro.analysis.rules.densify import NoMatrixDensifyRule

from tests.analysis.conftest import check_snippet


class TestNoMatrixDensify:
    def test_flags_todense_calls(self):
        findings = check_snippet(
            NoMatrixDensifyRule(),
            """
            import numpy as np

            def f(matrix):
                dense = np.asarray(matrix.todense())
                return dense
            """,
        )
        assert len(findings) == 1
        assert "toarray" in findings[0].message

    def test_flags_uncalled_attribute_too(self):
        findings = check_snippet(
            NoMatrixDensifyRule(),
            """
            def f(matrix):
                densify = matrix.todense
                return densify()
            """,
        )
        assert len(findings) == 1

    def test_toarray_is_fine(self):
        findings = check_snippet(
            NoMatrixDensifyRule(),
            """
            def f(matrix):
                return matrix.toarray()
            """,
        )
        assert findings == []

    def test_registered(self):
        assert NoMatrixDensifyRule in ALL_RULES
        assert NoMatrixDensifyRule.id == "no-matrix-densify"
