"""Tests for the SVG figure renderers."""

import xml.etree.ElementTree as ET

import pytest

from repro.viz import figure5_svg, figure6_svg, latency_cdf_svg, save_figures

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg_text):
    return ET.fromstring(svg_text)


class TestFigure6:
    ROWS = [("Ad-Maven", 120, 90), ("OneSignal", 60, 2), ("PopAds", 10, 10)]

    def test_valid_svg(self):
        root = parse(figure6_svg(self.ROWS))
        assert root.tag == f"{SVG_NS}svg"

    def test_one_bar_pair_per_row(self):
        root = parse(figure6_svg(self.ROWS))
        rects = root.findall(f"{SVG_NS}rect")
        # 2 legend swatches + 2 bars per network
        assert len(rects) == 2 + 2 * len(self.ROWS)

    def test_labels_present(self):
        svg = figure6_svg(self.ROWS)
        for name, _, _ in self.ROWS:
            assert name in svg

    def test_bar_widths_proportional(self):
        root = parse(figure6_svg([("A", 100, 50), ("B", 50, 25)]))
        rects = [r for r in root.findall(f"{SVG_NS}rect")][2:]
        width_a = float(rects[0].get("width"))
        width_b = float(rects[2].get("width"))
        assert width_a == pytest.approx(2 * width_b, rel=0.01)

    def test_escapes_markup(self):
        svg = figure6_svg([("bad<name>&", 1, 0)])
        parse(svg)  # must stay well-formed
        assert "bad<name>" not in svg

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            figure6_svg([])


class TestFigure5:
    def graph(self):
        import networkx as nx

        g = nx.Graph()
        g.add_node("W1", bipartite="cluster", size=5, campaign=True)
        g.add_node("W2", bipartite="cluster", size=1, campaign=False)
        g.add_node("evil.xyz", bipartite="domain")
        g.add_edge("W1", "evil.xyz")
        g.add_edge("W2", "evil.xyz")
        return g

    def test_valid_svg_with_edges(self):
        root = parse(figure5_svg(self.graph()))
        assert len(root.findall(f"{SVG_NS}line")) >= 2  # 2 edges (+ axes none)
        assert len(root.findall(f"{SVG_NS}circle")) == 2
        assert len([r for r in root.findall(f"{SVG_NS}rect")]) == 1

    def test_requires_both_sides(self):
        import networkx as nx

        g = nx.Graph()
        g.add_node("W1", bipartite="cluster")
        with pytest.raises(ValueError):
            figure5_svg(g)


class TestLatencyCdf:
    def test_valid(self):
        svg = latency_cdf_svg({1.0: 0.1, 15.0: 0.98, 60.0: 1.0})
        root = parse(svg)
        assert root.findall(f"{SVG_NS}path")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            latency_cdf_svg({})


class TestSaveFigures:
    def test_writes_files(self, tmp_path, small_dataset, small_result):
        written = save_figures(
            small_result, small_dataset.first_latencies_min, tmp_path
        )
        assert written
        names = {p.name for p in written}
        assert "figure6_network_distribution.svg" in names
        for path in written:
            parse(path.read_text())  # each file is well-formed SVG
