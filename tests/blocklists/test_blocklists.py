"""Tests for the VirusTotal and Google Safe Browsing models."""

import pytest

from repro.blocklists.base import ScanVerdict, UrlTruth, url_unit_draw
from repro.blocklists.gsb import GoogleSafeBrowsingModel
from repro.blocklists.virustotal import VirusTotalModel


MAL_URLS = [f"https://evil{i}.xyz/of1a/survey/start.php?sid={i}" for i in range(400)]
BENIGN_URLS = [f"https://nice{i}.com/deals/page{i}" for i in range(400)]


@pytest.fixture
def truth():
    mapping = {u: True for u in MAL_URLS}
    mapping.update({u: False for u in BENIGN_URLS})
    return UrlTruth(mapping)


class TestUrlUnitDraw:
    def test_deterministic(self):
        assert url_unit_draw("u", "s", 1) == url_unit_draw("u", "s", 1)

    def test_varies_by_salt_and_seed(self):
        base = url_unit_draw("u", "s", 1)
        assert url_unit_draw("u", "other", 1) != base
        assert url_unit_draw("u", "s", 2) != base

    def test_uniform_range(self):
        draws = [url_unit_draw(f"u{i}", "s", 1) for i in range(1000)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert 0.4 < sum(draws) / len(draws) < 0.6


class TestUrlTruth:
    def test_unknown_is_benign(self, truth):
        assert not truth.is_malicious("https://never-seen.example/")

    def test_from_records(self, small_dataset):
        truth = UrlTruth.from_records(small_dataset.valid_records)
        assert len(truth) > 0
        assert truth.malicious_urls()

    def test_any_malicious_wins(self):
        # If any WPN leading to a URL was malicious, the URL is malicious.
        from repro.blocklists.base import UrlTruth as UT

        ut = UT({"u": False})
        assert not ut.is_malicious("u")


class TestScanVerdict:
    def test_flagged_needs_positives(self):
        with pytest.raises(ValueError):
            ScanVerdict(url="u", flagged=True, positives=0)


class TestVirusTotalModel:
    def test_coverage_grows_with_time(self, truth):
        vt = VirusTotalModel(truth, seed=3, early_rate=0.03, late_rate=0.5)
        early = sum(vt.scan(u, 0).flagged for u in MAL_URLS)
        late = sum(vt.scan(u, 1).flagged for u in MAL_URLS)
        assert early < late
        assert abs(early / len(MAL_URLS) - 0.03) < 0.03
        assert abs(late / len(MAL_URLS) - 0.5) < 0.08

    def test_detections_are_nested_over_time(self, truth):
        vt = VirusTotalModel(truth, seed=3)
        for url in MAL_URLS[:100]:
            if vt.scan(url, 0).flagged:
                assert vt.scan(url, 1).flagged
            if vt.scan(url, 1).flagged:
                assert vt.scan(url, 3).flagged

    def test_rescan_is_consistent(self, truth):
        vt = VirusTotalModel(truth, seed=3)
        for url in MAL_URLS[:50]:
            assert vt.scan(url, 1).flagged == vt.scan(url, 1).flagged

    def test_false_positive_rate_low(self, truth):
        vt = VirusTotalModel(truth, seed=3, fp_rate=0.004)
        fps = sum(vt.scan(u, 1).flagged for u in BENIGN_URLS)
        assert fps <= len(BENIGN_URLS) * 0.03

    def test_flagged_verdict_has_positives(self, truth):
        vt = VirusTotalModel(truth, seed=3, late_rate=1.0)
        verdict = vt.scan(MAL_URLS[0], 1)
        assert verdict.flagged
        assert 1 <= verdict.positives <= 7
        assert verdict.total_engines == 70

    def test_invalid_rates(self, truth):
        with pytest.raises(ValueError):
            VirusTotalModel(truth, early_rate=0.9, late_rate=0.1)
        with pytest.raises(ValueError):
            VirusTotalModel(truth, fp_rate=1.5)

    def test_negative_month_rejected(self, truth):
        with pytest.raises(ValueError):
            VirusTotalModel(truth).scan("u", months_elapsed=-1)

    def test_scan_many(self, truth):
        vt = VirusTotalModel(truth, seed=3)
        verdicts = vt.scan_many(MAL_URLS[:10], 1)
        assert set(verdicts) == set(MAL_URLS[:10])

    def test_full_url_granularity(self, truth):
        # Two URLs on the same domain get independent verdicts.
        mapping = {"https://d.xyz/a": True, "https://d.xyz/b": True}
        vt = VirusTotalModel(UrlTruth(mapping), seed=11, late_rate=0.5)
        flags = {u: vt.scan(u, 1).flagged for u in mapping}
        # Not asserting they differ for this seed, only that the model
        # tracks full URLs, not domains:
        assert len(flags) == 2


class TestGsbModel:
    def test_low_stable_coverage(self, truth):
        gsb = GoogleSafeBrowsingModel(truth, seed=3, coverage=0.03)
        early = sum(gsb.scan(u, 0).flagged for u in MAL_URLS)
        late = sum(gsb.scan(u, 1).flagged for u in MAL_URLS)
        assert early == late  # time-invariant
        assert early <= len(MAL_URLS) * 0.08

    def test_no_false_positives(self, truth):
        gsb = GoogleSafeBrowsingModel(truth, seed=3, coverage=1.0)
        assert not any(gsb.scan(u).flagged for u in BENIGN_URLS)

    def test_invalid_coverage(self, truth):
        with pytest.raises(ValueError):
            GoogleSafeBrowsingModel(truth, coverage=-0.1)

    def test_misses_what_vt_misses_independently(self, truth):
        vt = VirusTotalModel(truth, seed=3, late_rate=0.5)
        gsb = GoogleSafeBrowsingModel(truth, seed=3, coverage=0.5)
        vt_flags = {u for u in MAL_URLS if vt.scan(u, 1).flagged}
        gsb_flags = {u for u in MAL_URLS if gsb.scan(u).flagged}
        # Different salts: the two services flag different subsets.
        assert vt_flags != gsb_flags
