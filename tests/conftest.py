"""Shared fixtures: one small crawled world reused across the suite.

Building the ecosystem + crawl is the expensive part, so integration-level
fixtures are session-scoped; tests must not mutate them.

Setting ``REPRO_DETSAN=1`` installs the DetSan determinism sanitizer
(:mod:`repro.analysis.sanitizer`) for the whole session: filesystem
enumeration is shuffled, ``ExecutionPlan.stream`` tile submission is
permuted, and per-tile kernel outputs are checksummed against a canonical
serial recompute — the suite then doubles as a determinism fuzzer. Tests
that assert scheduling *internals* (e.g. serial-stream laziness) opt out
with ``@pytest.mark.no_detsan``. ``REPRO_DETSAN_SEED`` varies the
permutations.
"""

from __future__ import annotations

import os

import pytest

from repro import PushAdMiner, paper_scenario, run_full_crawl
from repro.analysis import sanitizer
from repro.crawler.seeds import discover_seeds
from repro.webenv.generator import generate_ecosystem


SMALL_SEED = 8
SMALL_SCALE = 0.03

_DETSAN_ENABLED = bool(os.environ.get("REPRO_DETSAN"))


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "no_detsan: suspend the DetSan determinism sanitizer for this test "
        "(tests asserting scheduling internals, not outputs)",
    )
    if _DETSAN_ENABLED:
        seed = int(os.environ.get("REPRO_DETSAN_SEED", "213"))
        sanitizer.plugin_configure(seed=seed)


def pytest_unconfigure(config):
    if _DETSAN_ENABLED:
        sanitizer.plugin_unconfigure()


def pytest_runtest_setup(item):
    if _DETSAN_ENABLED:
        sanitizer.plugin_runtest_setup(
            item.get_closest_marker("no_detsan") is not None
        )


def pytest_runtest_teardown(item, nextitem):
    if _DETSAN_ENABLED:
        sanitizer.plugin_runtest_teardown(
            item.get_closest_marker("no_detsan") is not None
        )


@pytest.fixture(scope="session")
def small_config():
    return paper_scenario(seed=SMALL_SEED, scale=SMALL_SCALE)


@pytest.fixture(scope="session")
def small_ecosystem(small_config):
    return generate_ecosystem(small_config)


@pytest.fixture(scope="session")
def small_discovery(small_ecosystem):
    return discover_seeds(small_ecosystem)


@pytest.fixture(scope="session")
def small_dataset(small_config):
    return run_full_crawl(config=small_config)


@pytest.fixture(scope="session")
def small_result(small_dataset):
    miner = PushAdMiner.for_dataset(small_dataset)
    return miner.run(small_dataset.valid_records)
