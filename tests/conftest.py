"""Shared fixtures: one small crawled world reused across the suite.

Building the ecosystem + crawl is the expensive part, so integration-level
fixtures are session-scoped; tests must not mutate them.
"""

from __future__ import annotations

import pytest

from repro import PushAdMiner, paper_scenario, run_full_crawl
from repro.crawler.seeds import discover_seeds
from repro.webenv.generator import generate_ecosystem


SMALL_SEED = 8
SMALL_SCALE = 0.03


@pytest.fixture(scope="session")
def small_config():
    return paper_scenario(seed=SMALL_SEED, scale=SMALL_SCALE)


@pytest.fixture(scope="session")
def small_ecosystem(small_config):
    return generate_ecosystem(small_config)


@pytest.fixture(scope="session")
def small_discovery(small_ecosystem):
    return discover_seeds(small_ecosystem)


@pytest.fixture(scope="session")
def small_dataset(small_config):
    return run_full_crawl(config=small_config)


@pytest.fixture(scope="session")
def small_result(small_dataset):
    miner = PushAdMiner.for_dataset(small_dataset)
    return miner.run(small_dataset.valid_records)
