"""Tests for dataset persistence (JSONL) and the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.io import load_records, record_from_dict, record_to_dict, save_records
from tests.core.test_records_features import make_record


class TestRecordRoundTrip:
    def test_dict_round_trip(self):
        record = make_record()
        assert record_from_dict(record_to_dict(record)) == record

    def test_invalid_record_round_trip(self):
        record = make_record(valid=False, landing_url=None, redirect_hops=(),
                             visual_hash=None, landing_ip=None,
                             landing_registrant=None)
        assert record_from_dict(record_to_dict(record)) == record

    def test_schema_version_checked(self):
        data = record_to_dict(make_record())
        data["schema"] = 99
        with pytest.raises(ValueError):
            record_from_dict(data)

    def test_file_round_trip(self, tmp_path):
        records = [make_record(), make_record(wpn_id="w2", title="other")]
        path = tmp_path / "records.jsonl"
        assert save_records(records, path) == 2
        loaded = load_records(path)
        assert loaded == records

    def test_real_dataset_round_trip(self, tmp_path, small_dataset):
        sample = small_dataset.records[:50]
        path = tmp_path / "sample.jsonl"
        save_records(sample, path)
        assert load_records(path) == sample

    def test_corrupt_line_reported_with_position(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"not": "a record"}\n')
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            load_records(path)

    def test_blank_lines_skipped(self, tmp_path):
        record = make_record()
        path = tmp_path / "r.jsonl"
        path.write_text(json.dumps(record_to_dict(record)) + "\n\n")
        assert load_records(path) == [record]


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        for command in ("crawl", "analyze", "experiments", "detect"):
            args = parser.parse_args([command])
            assert callable(args.func)

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_crawl_writes_records(self, tmp_path, capsys):
        out = tmp_path / "records.jsonl"
        code = main(["crawl", "--scale", "0.01", "--seed", "3",
                     "--output", str(out)])
        assert code == 0
        assert out.exists()
        assert load_records(out)
        captured = capsys.readouterr().out
        assert "collected_wpns" in captured

    def test_analyze_from_file(self, tmp_path, capsys):
        out = tmp_path / "records.jsonl"
        main(["crawl", "--scale", "0.015", "--seed", "3", "--output", str(out)])
        capsys.readouterr()
        code = main(["analyze", "--records", str(out), "--seed", "3"])
        assert code == 0
        captured = capsys.readouterr().out
        assert "Table 3" in captured
        assert "Table 4" in captured
        assert "Figure 6" in captured

    def test_analyze_fresh_crawl(self, capsys):
        assert main(["analyze", "--scale", "0.01", "--seed", "4"]) == 0
        assert "malicious_ad_pct" in capsys.readouterr().out

    def test_detect_command(self, capsys):
        assert main(["detect", "--scale", "0.02", "--seed", "5"]) == 0
        captured = capsys.readouterr().out
        assert "precision" in captured and "auc" in captured


class TestMarkdownSummary:
    def test_summary_markdown_content(self, small_dataset, small_result):
        from repro.core.report import summary_markdown

        text = summary_markdown(small_dataset, small_result)
        assert text.startswith("# PushAdMiner run summary")
        assert "## Table 3" in text
        assert "## Table 4" in text
        assert "## Figure 6" in text
        assert "malicious_ad_pct" in text
        # Markdown tables are well-formed (same pipe count per section row).
        for line in text.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")

    def test_cli_markdown_flag(self, tmp_path, capsys):
        out = tmp_path / "summary.md"
        assert main(["analyze", "--scale", "0.01", "--seed", "6",
                     "--markdown", str(out)]) == 0
        assert out.exists()
        assert "# PushAdMiner run summary" in out.read_text()

    def test_cli_markdown_from_records_file(self, tmp_path, capsys):
        records = tmp_path / "r.jsonl"
        main(["crawl", "--scale", "0.015", "--seed", "6",
              "--output", str(records)])
        out = tmp_path / "s.md"
        assert main(["analyze", "--records", str(records), "--seed", "6",
                     "--markdown", str(out)]) == 0
        assert "Table 3" in out.read_text()


class TestExperimentsCommand:
    def test_experiments_command_prints_all_sections(self, capsys):
        assert main(["experiments", "--scale", "0.012", "--seed", "9"]) == 0
        out = capsys.readouterr().out
        for marker in ("pilot:", "blocklist lag:", "revisit:",
                       "double permission:", "quiet UI:"):
            assert marker in out
