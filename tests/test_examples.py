"""Smoke tests: every example script runs end to end.

Each example is executed as a real subprocess (as a user would run it) at
a tiny scale, and its output is checked for the section headers it promises.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=300):
    process = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert process.returncode == 0, process.stderr[-2000:]
    return process.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "--scale", "0.015", "--seed", "3")
        assert "Table 3" in out
        assert "Table 4" in out
        assert "the paper measured 51%" in out

    def test_campaign_hunt(self):
        out = run_example("campaign_hunt.py", "--scale", "0.02", "--seed", "3")
        assert "Example WPN clusters" in out
        assert "Meta clusters" in out
        assert "WPN ads per ad network" in out

    def test_adblock_audit(self):
        out = run_example("adblock_audit.py", "--scale", "0.015", "--seed", "3")
        assert "Table 6" in out
        assert "SW-aware" in out

    def test_browser_session_trace(self):
        out = run_example("browser_session_trace.py", "--seed", "3")
        assert "instrumentation event log" in out
        assert "notification_shown" in out

    def test_browser_session_trace_mobile(self):
        out = run_example("browser_session_trace.py", "--seed", "3", "--mobile")
        assert "ADB logcat" in out

    def test_blocklist_sensitivity(self):
        out = run_example("blocklist_sensitivity.py", "--scale", "0.015",
                          "--seed", "3")
        assert "VT coverage" in out
        assert "amplification" in out

    def test_realtime_blocker(self):
        out = run_example("realtime_blocker.py", "--scale", "0.03", "--seed", "3")
        assert "threshold" in out
        assert "false-block budget" in out

    def test_reproduce_paper(self, tmp_path):
        out = run_example(
            "reproduce_paper.py", "--scale", "0.02", "--seed", "3",
            "--out", str(tmp_path),
        )
        assert "Table 1" in out
        assert (tmp_path / "tables.txt").exists()
        assert (tmp_path / "records.jsonl").exists()
        assert list(tmp_path.glob("*.svg"))
