"""Tests for union-find and connected components."""

import pytest

from repro.util.graph import UnionFind, connected_components


class TestUnionFind:
    def test_singletons_after_add(self):
        uf = UnionFind(["a", "b"])
        assert not uf.connected("a", "b")
        assert len(uf) == 2

    def test_union_connects(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.connected("a", "c")

    def test_union_is_idempotent(self):
        uf = UnionFind()
        root1 = uf.union("a", "b")
        root2 = uf.union("a", "b")
        assert root1 == root2
        assert len(uf.components()) == 1

    def test_find_unknown_raises(self):
        with pytest.raises(KeyError):
            UnionFind().find("ghost")

    def test_add_existing_is_noop(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.add("a")
        assert uf.connected("a", "b")

    def test_components_partition_everything(self):
        uf = UnionFind(range(6))
        uf.union(0, 1)
        uf.union(2, 3)
        comps = uf.components()
        assert sorted(len(c) for c in comps) == [1, 1, 2, 2]
        assert sorted(x for c in comps for x in c) == list(range(6))

    def test_contains(self):
        uf = UnionFind(["x"])
        assert "x" in uf
        assert "y" not in uf

    def test_transitive_chain(self):
        uf = UnionFind()
        for i in range(100):
            uf.union(i, i + 1)
        assert uf.connected(0, 100)
        assert len(uf.components()) == 1


class TestConnectedComponents:
    def test_isolated_nodes_kept(self):
        comps = connected_components(edges=[(1, 2)], nodes=[3])
        assert sorted(sorted(c) for c in comps) == [[1, 2], [3]]

    def test_empty_graph(self):
        assert connected_components(edges=[]) == []

    def test_bipartite_style_merge(self):
        # Two "clusters" sharing a "domain" end up in one component.
        edges = [(("w", 1), ("d", "x.com")), (("w", 2), ("d", "x.com"))]
        comps = connected_components(edges)
        assert len(comps) == 1
        assert len(comps[0]) == 3
