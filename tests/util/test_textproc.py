"""Tests for tokenization helpers."""

import pytest

from repro.util.textproc import (
    jaccard_distance,
    ngrams,
    tokenize_text,
    tokenize_url_path,
)


class TestTokenizeText:
    def test_lowercases_and_splits(self):
        assert tokenize_text("Hello WORLD") == ["hello", "world"]

    def test_strips_punctuation(self):
        assert tokenize_text("win $1,000 now!!!") == ["win", "1", "000", "now"]

    def test_keeps_apostrophes(self):
        assert "don't" in tokenize_text("Don't miss this")

    def test_drops_stopwords_by_default(self):
        tokens = tokenize_text("the prize of a winner")
        assert "the" not in tokens and "of" not in tokens
        assert "prize" in tokens

    def test_can_keep_stopwords(self):
        assert "the" in tokenize_text("the prize", drop_stopwords=False)

    def test_keeps_possessive_scam_phrasing(self):
        # "your" is a real push-ad signal and must survive stopwording.
        assert "your" in tokenize_text("Your payment info has been leaked")

    def test_empty(self):
        assert tokenize_text("") == []


class TestTokenizeUrlPath:
    def test_paper_example_shape(self):
        tokens = tokenize_url_path("/offers/win-prize/claim.php", "uid=99&src=push")
        assert tokens == ["offers", "win", "prize", "claim", "php", "uid", "src"]

    def test_query_values_excluded(self):
        tokens = tokenize_url_path("/a", "token=SECRETVALUE")
        assert "secretvalue" not in tokens
        assert "token" in tokens

    def test_no_query(self):
        assert tokenize_url_path("/x/y") == ["x", "y"]

    def test_root_path(self):
        assert tokenize_url_path("/") == []

    def test_query_without_value(self):
        assert tokenize_url_path("/p", "flag") == ["p", "flag"]


class TestNgrams:
    def test_bigrams(self):
        assert ngrams(["a", "b", "c"], 2) == ["a b", "b c"]

    def test_n_longer_than_input(self):
        assert ngrams(["a"], 2) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngrams(["a"], 0)


class TestJaccardDistance:
    def test_identical_sets(self):
        assert jaccard_distance({"a", "b"}, {"a", "b"}) == 0.0

    def test_disjoint_sets(self):
        assert jaccard_distance({"a"}, {"b"}) == 1.0

    def test_both_empty_is_zero(self):
        assert jaccard_distance(set(), set()) == 0.0

    def test_one_empty_is_one(self):
        assert jaccard_distance({"a"}, set()) == 1.0

    def test_half_overlap(self):
        assert jaccard_distance({"a", "b"}, {"b", "c"}) == pytest.approx(2 / 3)
