"""Tests for the deterministic named RNG streams."""

import numpy as np
import pytest

from repro.util.rng import RngFactory, weighted_choice


class TestRngFactory:
    def test_same_name_same_stream(self):
        rngs = RngFactory(seed=42)
        a = [rngs.stream("x").random() for _ in range(3)]
        b = [rngs.stream("x").random() for _ in range(3)]
        assert a == b

    def test_different_names_differ(self):
        rngs = RngFactory(seed=42)
        assert rngs.stream("a").random() != rngs.stream("b").random()

    def test_different_seeds_differ(self):
        assert RngFactory(1).stream("x").random() != RngFactory(2).stream("x").random()

    def test_stable_across_instances(self):
        # Not salted per process/instance: a fresh factory reproduces values.
        assert RngFactory(9).stream("s").random() == RngFactory(9).stream("s").random()

    def test_numpy_stream_deterministic(self):
        rngs = RngFactory(5)
        a = rngs.numpy_stream("n").random(4).tolist()
        b = rngs.numpy_stream("n").random(4).tolist()
        assert a == b

    def test_numpy_and_python_streams_independent(self):
        rngs = RngFactory(5)
        before = rngs.stream("p").random()
        rngs.numpy_stream("p").random(100)
        assert rngs.stream("p").random() == before

    def test_child_namespacing(self):
        rngs = RngFactory(3)
        child_a = rngs.child("crawl")
        child_b = rngs.child("analysis")
        assert child_a.stream("x").random() != child_b.stream("x").random()
        assert rngs.child("crawl").stream("x").random() == child_a.stream("x").random()

    def test_rejects_non_int_seed(self):
        with pytest.raises(TypeError):
            RngFactory(seed="7")


class TestStreamIndependence:
    """Named streams are independent: no draw on one stream moves another."""

    def test_interleaving_does_not_perturb_python_streams(self):
        undisturbed = RngFactory(11).stream("a").random()
        rngs = RngFactory(11)
        a = rngs.stream("a")
        rngs.stream("b").random()  # consume from b before touching a
        assert a.random() == undisturbed

    def test_streams_are_statistically_distinct(self):
        rngs = RngFactory(11)
        a, b = rngs.stream("a"), rngs.stream("b")
        xs = [a.random() for _ in range(200)]
        ys = [b.random() for _ in range(200)]
        matches = sum(1 for x, y in zip(xs, ys) if abs(x - y) < 1e-12)
        assert matches == 0

    def test_numpy_streams_independent_of_each_other(self):
        rngs = RngFactory(13)
        expected = rngs.numpy_stream("n1").random(8).tolist()
        n1 = rngs.numpy_stream("n1")
        rngs.numpy_stream("n2").random(1000)
        assert n1.random(8).tolist() == expected


class TestStabilityAcrossRuns:
    """Same seed -> bit-identical streams in every process, forever.

    These golden values pin the derivation (blake2b-based, never the salted
    built-in ``hash``). If they change, every recorded experiment in
    EXPERIMENTS.md silently stops being reproducible — do not update them
    without bumping the scenario format.
    """

    def test_python_stream_golden_values(self):
        stream = RngFactory(seed=0).stream("golden")
        got = [round(stream.random(), 12) for _ in range(3)]
        assert got == [0.363376793352, 0.105436121724, 0.088609824029]

    def test_numpy_stream_golden_values(self):
        stream = RngFactory(seed=0).numpy_stream("golden")
        got = [round(x, 12) for x in stream.random(3).tolist()]
        assert got == [0.610067550397, 0.926556196777, 0.217137016723]

    def test_child_factory_golden_value(self):
        stream = RngFactory(seed=0).child("crawl").stream("golden")
        assert round(stream.random(), 12) == 0.817003501896


class TestGlobalNumpyStateUntouched:
    """numpy_stream must never read or write numpy's global legacy RNG."""

    def test_numpy_stream_does_not_advance_global_state(self):
        before = np.random.get_state()[1].tolist()
        rngs = RngFactory(7)
        rngs.numpy_stream("x").random(1000)
        rngs.numpy_stream("y").standard_normal(100)
        after = np.random.get_state()[1].tolist()
        assert before == after

    def test_numpy_stream_is_not_influenced_by_global_seed(self):
        state = np.random.get_state()
        try:
            np.random.seed(1)
            a = RngFactory(7).numpy_stream("x").random(4).tolist()
            np.random.seed(2)
            b = RngFactory(7).numpy_stream("x").random(4).tolist()
        finally:
            np.random.set_state(state)
        assert a == b


class TestWeightedChoice:
    def test_respects_zero_weight(self):
        rng = RngFactory(1).stream("wc")
        picks = {weighted_choice(rng, ["a", "b"], [1.0, 0.0]) for _ in range(50)}
        assert picks == {"a"}

    def test_length_mismatch_raises(self):
        rng = RngFactory(1).stream("wc")
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a"], [1.0, 2.0])

    def test_empty_raises(self):
        rng = RngFactory(1).stream("wc")
        with pytest.raises(ValueError):
            weighted_choice(rng, [], [])
