"""Tests for the deterministic named RNG streams."""

import pytest

from repro.util.rng import RngFactory, weighted_choice


class TestRngFactory:
    def test_same_name_same_stream(self):
        rngs = RngFactory(seed=42)
        a = [rngs.stream("x").random() for _ in range(3)]
        b = [rngs.stream("x").random() for _ in range(3)]
        assert a == b

    def test_different_names_differ(self):
        rngs = RngFactory(seed=42)
        assert rngs.stream("a").random() != rngs.stream("b").random()

    def test_different_seeds_differ(self):
        assert RngFactory(1).stream("x").random() != RngFactory(2).stream("x").random()

    def test_stable_across_instances(self):
        # Not salted per process/instance: a fresh factory reproduces values.
        assert RngFactory(9).stream("s").random() == RngFactory(9).stream("s").random()

    def test_numpy_stream_deterministic(self):
        rngs = RngFactory(5)
        a = rngs.numpy_stream("n").random(4).tolist()
        b = rngs.numpy_stream("n").random(4).tolist()
        assert a == b

    def test_numpy_and_python_streams_independent(self):
        rngs = RngFactory(5)
        before = rngs.stream("p").random()
        rngs.numpy_stream("p").random(100)
        assert rngs.stream("p").random() == before

    def test_child_namespacing(self):
        rngs = RngFactory(3)
        child_a = rngs.child("crawl")
        child_b = rngs.child("analysis")
        assert child_a.stream("x").random() != child_b.stream("x").random()
        assert rngs.child("crawl").stream("x").random() == child_a.stream("x").random()

    def test_rejects_non_int_seed(self):
        with pytest.raises(TypeError):
            RngFactory(seed="7")


class TestWeightedChoice:
    def test_respects_zero_weight(self):
        rng = RngFactory(1).stream("wc")
        picks = {weighted_choice(rng, ["a", "b"], [1.0, 0.0]) for _ in range(50)}
        assert picks == {"a"}

    def test_length_mismatch_raises(self):
        rng = RngFactory(1).stream("wc")
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a"], [1.0, 2.0])

    def test_empty_raises(self):
        rng = RngFactory(1).stream("wc")
        with pytest.raises(ValueError):
            weighted_choice(rng, [], [])
