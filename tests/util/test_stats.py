"""Tests for small statistics helpers."""

import pytest

from repro.util.stats import counter_table, empirical_cdf, percentile, safe_ratio


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3.0

    def test_interpolates(self):
        assert percentile([0, 10], 25) == 2.5

    def test_extremes(self):
        values = [5, 1, 9]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_single_value(self):
        assert percentile([7], 40) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestEmpiricalCdf:
    def test_basic(self):
        assert empirical_cdf([1, 2, 3, 4], [2.5]) == [0.5]

    def test_below_and_above(self):
        cdf = empirical_cdf([10, 20], [5, 25])
        assert cdf == [0.0, 1.0]

    def test_monotone(self):
        cdf = empirical_cdf([3, 1, 4, 1, 5], [1, 2, 3, 4, 5])
        assert cdf == sorted(cdf)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            empirical_cdf([], [1])


class TestCounterTable:
    def test_sorted_by_count(self):
        rows = counter_table(["a", "b", "b", "b", "a", "c"])
        assert rows[0] == ("b", 3)
        assert rows[1] == ("a", 2)

    def test_top_limits(self):
        rows = counter_table(["a", "b", "b"], top=1)
        assert rows == [("b", 2)]

    def test_deterministic_tiebreak(self):
        assert counter_table(["b", "a"]) == counter_table(["a", "b"])


class TestSafeRatio:
    def test_normal(self):
        assert safe_ratio(1, 4) == 0.25

    def test_zero_denominator(self):
        assert safe_ratio(5, 0) == 0.0
