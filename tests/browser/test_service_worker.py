"""Tests for the service worker runtime (registration + handlers)."""

import pytest

from repro.browser.events import EventKind, EventLog
from repro.browser.service_worker import (
    LEGACY_SDK_RATE,
    ServiceWorkerRuntime,
    _is_legacy_embed,
)
from repro.push.fcm import FcmService
from repro.webenv.campaigns import MessageCreative

NETWORK_DOMAINS = {"Ad-Maven": "admaven.com", "OneSignal": "onesignal.com"}


def runtime():
    return ServiceWorkerRuntime(EventLog(), NETWORK_DOMAINS)


def delivery_for(fcm, origin="https://pub.com"):
    sub = fcm.subscribe(
        origin=origin, source_url=f"{origin}/", sw_script_url=f"{origin}/sw.js",
        network_name="Ad-Maven", platform="desktop",
    )
    creative = MessageCreative(
        title="t", body="b", landing_domain="l.com", landing_path="/p",
        landing_query="", campaign_id="cmp00001",
        family_name="survey_scam", malicious=True,
    )
    fcm.send(sub.endpoint, creative, 0.0)
    return fcm.deliver(sub.endpoint, 1.0)[0]


class TestRegistration:
    def test_network_sw_script_served_from_publisher_origin(self):
        rt = runtime()
        reg = rt.register("https://pub.com", "https://pub.com/", "Ad-Maven", 0.0)
        assert reg.script_url == "https://pub.com/sw/admaven-push-sw.js"
        assert reg.is_ad_sw

    def test_site_own_sw(self):
        rt = runtime()
        reg = rt.register("https://news.com", "https://news.com/", None, 0.0)
        assert reg.script_url == "https://news.com/sw.js"
        assert not reg.is_ad_sw
        assert not reg.legacy_sdk

    def test_unknown_network_rejected(self):
        with pytest.raises(KeyError):
            runtime().register("https://pub.com", "https://pub.com/", "Nope", 0.0)

    def test_registration_event_emitted(self):
        log = EventLog()
        rt = ServiceWorkerRuntime(log, NETWORK_DOMAINS)
        rt.register("https://pub.com", "https://pub.com/", "Ad-Maven", 2.0)
        events = log.of_kind(EventKind.SW_REGISTERED)
        assert len(events) == 1
        assert events[0].data["origin"] == "https://pub.com"


class TestLegacySdk:
    def test_legacy_flag_is_origin_stable(self):
        assert _is_legacy_embed("https://a.com", "Ad-Maven") == _is_legacy_embed(
            "https://a.com", "Ad-Maven"
        )

    def test_legacy_rate_approximate(self):
        hits = sum(
            _is_legacy_embed(f"https://site{i}.com", "Ad-Maven")
            for i in range(3000)
        )
        assert abs(hits / 3000 - LEGACY_SDK_RATE) < 0.02

    def test_legacy_sw_talks_to_legacy_api(self):
        rt = runtime()
        legacy_origin = next(
            f"https://site{i}.com"
            for i in range(10_000)
            if _is_legacy_embed(f"https://site{i}.com", "Ad-Maven")
        )
        reg = rt.register(legacy_origin, f"{legacy_origin}/", "Ad-Maven", 0.0)
        assert reg.legacy_sdk
        requests = rt.handle_notification_click(reg, 1.0)
        assert requests[0].url.host == "legacy-api.admaven.com"

    def test_modern_sw_talks_to_current_api(self):
        rt = runtime()
        modern_origin = next(
            f"https://site{i}.com"
            for i in range(10_000)
            if not _is_legacy_embed(f"https://site{i}.com", "Ad-Maven")
        )
        reg = rt.register(modern_origin, f"{modern_origin}/", "Ad-Maven", 0.0)
        requests = rt.handle_notification_click(reg, 1.0)
        assert requests[0].url.host == "api.admaven.com"


class TestHandlers:
    def test_push_handler_fetches_ad_config(self):
        rt = runtime()
        fcm = FcmService()
        reg = rt.register("https://pub.com", "https://pub.com/", "Ad-Maven", 0.0)
        requests = rt.handle_push(reg, delivery_for(fcm), 1.0)
        assert len(requests) == 1
        assert requests[0].purpose == "ad_resolve"
        assert requests[0].initiator == "service_worker"

    def test_site_own_sw_makes_no_requests(self):
        rt = runtime()
        fcm = FcmService()
        reg = rt.register("https://news.com", "https://news.com/", None, 0.0)
        assert rt.handle_push(reg, delivery_for(fcm), 1.0) == []
        assert rt.handle_notification_click(reg, 1.0) == []

    def test_click_handler_reports(self):
        rt = runtime()
        reg = rt.register("https://pub.com", "https://pub.com/", "Ad-Maven", 0.0)
        requests = rt.handle_notification_click(reg, 1.0)
        assert requests[0].purpose == "click_tracking"
        assert "click/report" in requests[0].url.path
