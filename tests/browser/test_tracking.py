"""Tests for cross-session tracking and the per-URL-container mitigation."""

import pytest

from repro.browser.browser import InstrumentedBrowser
from repro.browser.tracking import CookieJar, CrossSessionTracker
from repro.push.fcm import FcmService
from repro.util.rng import RngFactory


def tracked_publishers(ecosystem, network="Ad-Maven", limit=40):
    sites = [
        s for s in ecosystem.websites
        if s.kind == "publisher" and s.requests_permission
        and network in s.network_names
    ]
    return sites[:limit]


class TestCookieJar:
    def test_set_and_query(self):
        jar = CookieJar()
        assert not jar.has_tracker("Ad-Maven")
        jar.set_tracker("Ad-Maven")
        assert jar.has_tracker("Ad-Maven")
        assert len(jar) == 1
        jar.clear()
        assert len(jar) == 0


class TestCrossSessionTracker:
    def test_fresh_profile_always_prompted(self):
        tracker = CrossSessionTracker(reprompt_rate=0.0)
        rng = RngFactory(1).stream("t")
        assert tracker.allows_prompt(CookieJar(), ("Ad-Maven",), rng)

    def test_tracked_profile_mostly_suppressed(self):
        tracker = CrossSessionTracker(reprompt_rate=0.0)
        jar = CookieJar()
        tracker.record_visit(jar, ("Ad-Maven",))
        rng = RngFactory(1).stream("t")
        assert not tracker.allows_prompt(jar, ("Ad-Maven",), rng)

    def test_non_tracking_network_unaffected(self):
        tracker = CrossSessionTracker(reprompt_rate=0.0)
        jar = CookieJar()
        tracker.record_visit(jar, ("OneSignal",))
        rng = RngFactory(1).stream("t")
        assert "OneSignal" not in jar.trackers
        assert tracker.allows_prompt(jar, ("OneSignal",), rng)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            CrossSessionTracker(reprompt_rate=1.5)

    def test_shared_profile_loses_prompts(self, small_ecosystem):
        """The paper's rationale for one container per URL: a shared
        profile sees far fewer prompts from tracking networks."""
        sites = tracked_publishers(small_ecosystem)
        assert len(sites) >= 10
        tracker = CrossSessionTracker(reprompt_rate=0.0)

        shared_jar = CookieJar()
        shared_browser = InstrumentedBrowser(
            small_ecosystem, FcmService(), rng=RngFactory(2).stream("shared"),
            tracker=tracker, cookie_jar=shared_jar,
        )
        shared_prompts = sum(
            1 for site in sites
            if shared_browser.visit(site, 0.0).decision == "granted"
        )

        isolated_prompts = 0
        for i, site in enumerate(sites):
            browser = InstrumentedBrowser(
                small_ecosystem, FcmService(),
                rng=RngFactory(100 + i).stream("iso"),
                tracker=tracker, cookie_jar=CookieJar(),  # fresh per URL
            )
            if browser.visit(site, 0.0).decision == "granted":
                isolated_prompts += 1

        assert shared_prompts == 1           # only the first visit prompts
        assert isolated_prompts == len(sites)


class TestEmulatorDetection:
    def test_emulated_device_sees_fewer_malicious_ads(self, small_ecosystem):
        rng_real = RngFactory(1).stream("real")
        rng_emu = RngFactory(1).stream("emu")

        def malicious_share(rng, emulated):
            hits = 0
            total = 0
            for _ in range(400):
                message = small_ecosystem.sample_ad_message(
                    "Ad-Maven", "mobile", rng, emulated=emulated
                )
                if message is not None:
                    total += 1
                    hits += message.malicious
            return hits / total

        real = malicious_share(rng_real, emulated=False)
        emulated = malicious_share(rng_emu, emulated=True)
        # The penalty must visibly depress the malicious share; the exact
        # gap depends on how benign-poor the network's mobile pool is.
        assert real > emulated + 0.1
