"""Tests for the notification center: show, click, actions, close."""

import pytest

from repro.browser.events import EventKind, EventLog
from repro.browser.notifications import NotificationCenter
from repro.browser.service_worker import ServiceWorkerRuntime
from repro.push.fcm import FcmService
from repro.webenv.campaigns import MessageCreative


def shown_notification(actions=(), icon_brand=None):
    log = EventLog()
    center = NotificationCenter(log)
    runtime = ServiceWorkerRuntime(log, {"Ad-Maven": "admaven.com"})
    registration = runtime.register(
        "https://pub.com", "https://pub.com/", "Ad-Maven", 0.0
    )
    fcm = FcmService()
    sub = fcm.subscribe(
        origin="https://pub.com", source_url="https://pub.com/",
        sw_script_url=registration.script_url, network_name="Ad-Maven",
        platform="desktop",
    )
    creative = MessageCreative(
        title="(1) New Prize Pending", body="Claim your prize",
        landing_domain="win.xyz", landing_path="/p", landing_query="",
        campaign_id="cmp00001", family_name="sweepstakes", malicious=True,
        icon_brand=icon_brand, actions=tuple(actions),
    )
    fcm.send(sub.endpoint, creative, 0.0)
    delivery = fcm.deliver(sub.endpoint, 1.0)[0]
    return center, log, center.show(registration, delivery, 1.0)


class TestShow:
    def test_metadata_logged(self):
        center, log, notification = shown_notification(actions=("Claim now",))
        event = log.of_kind(EventKind.NOTIFICATION_SHOWN)[0]
        assert event.data["title"] == "(1) New Prize Pending"
        assert event.data["actions"] == ["Claim now"]
        assert notification.actions == ("Claim now",)

    def test_brand_icon_propagates(self):
        _, _, notification = shown_notification(icon_brand="paypal")
        assert notification.icon_url.endswith("/icons/paypal.png")

    def test_generic_icon_uses_family(self):
        _, _, notification = shown_notification()
        assert notification.icon_url.endswith("/icons/push-sweepstakes.png")


class TestClickAndClose:
    def test_click_is_exclusive(self):
        center, log, notification = shown_notification()
        center.click(notification, 2.0)
        assert center.was_clicked(notification)
        with pytest.raises(ValueError):
            center.close(notification, 3.0)

    def test_close_logged_and_exclusive(self):
        center, log, notification = shown_notification()
        center.close(notification, 2.0)
        assert log.count(EventKind.NOTIFICATION_CLOSED) == 1
        with pytest.raises(ValueError):
            center.click(notification, 3.0)

    def test_action_click(self):
        center, log, notification = shown_notification(
            actions=("Claim now", "No thanks")
        )
        label = center.click_action(notification, 1, 2.0)
        assert label == "No thanks"
        event = log.of_kind(EventKind.NOTIFICATION_ACTION_CLICKED)[0]
        assert event.data["action"] == "No thanks"

    def test_action_index_validated(self):
        center, _, notification = shown_notification(actions=("Only one",))
        with pytest.raises(IndexError):
            center.click_action(notification, 5, 2.0)

    def test_action_click_is_exclusive(self):
        center, _, notification = shown_notification(actions=("A",))
        center.click_action(notification, 0, 2.0)
        with pytest.raises(ValueError):
            center.click(notification, 2.1)


class TestEndToEndActions:
    def test_campaign_actions_reach_notifications(self, small_ecosystem):
        # Some generated families carry action buttons; find one creative.
        from repro.util.rng import RngFactory

        rng = RngFactory(2).stream("actions")
        found = False
        for _ in range(300):
            creative = small_ecosystem.sample_ad_message("Ad-Maven", "desktop", rng)
            if creative is not None and creative.actions:
                found = True
                break
        assert found, "no action-carrying creatives sampled"
