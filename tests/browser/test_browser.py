"""Tests for the instrumented browser: visit, push, click."""

import pytest

from repro.browser.browser import InstrumentedBrowser
from repro.browser.events import EventKind
from repro.push.fcm import FcmService
from repro.util.rng import RngFactory


def find_site(ecosystem, kind, prompting=True):
    for site in ecosystem.websites:
        if site.kind == kind and site.requests_permission == prompting:
            return site
    raise AssertionError(f"no {kind} site found")


@pytest.fixture
def browser(small_ecosystem):
    return InstrumentedBrowser(
        small_ecosystem,
        FcmService(),
        rng=RngFactory(99).stream("browser"),
        platform="desktop",
    )


class TestVisit:
    def test_plain_site_no_subscription(self, browser, small_ecosystem):
        site = find_site(small_ecosystem, "plain", prompting=False)
        visit = browser.visit(site, 0.0)
        assert visit.decision is None
        assert visit.subscriptions == ()
        assert browser.events.count(EventKind.NAVIGATION) == 1
        assert browser.events.count(EventKind.SW_REGISTERED) == 0

    def test_publisher_registers_network_sw(self, browser, small_ecosystem):
        site = find_site(small_ecosystem, "publisher")
        visit = browser.visit(site, 0.0)
        assert visit.decision == "granted"
        assert len(visit.subscriptions) == len(site.network_names)
        sub = visit.subscriptions[0]
        assert sub.network_name == site.network_names[0]
        assert sub.origin == site.url.origin
        registration = browser.sw_runtime.registrations[0]
        assert registration.script_url.startswith(site.url.origin)
        assert registration.is_ad_sw

    def test_alert_site_registers_own_sw(self, browser, small_ecosystem):
        site = find_site(small_ecosystem, "alert")
        visit = browser.visit(site, 0.0)
        sub = visit.subscriptions[0]
        assert sub.network_name is None
        assert sub.alert_family == site.alert_family
        assert browser.sw_runtime.registrations[0].script_url.endswith("/sw.js")

    def test_permission_prompt_delay_respected(self, browser, small_ecosystem):
        site = find_site(small_ecosystem, "publisher")
        browser.visit(site, 10.0)
        prompt = browser.events.of_kind(EventKind.PERMISSION_REQUESTED)[0]
        assert prompt.time_min == pytest.approx(10.0 + site.permission_delay_min)

    def test_invalid_platform(self, small_ecosystem):
        with pytest.raises(ValueError):
            InstrumentedBrowser(
                small_ecosystem, FcmService(),
                rng=RngFactory(1).stream("x"), platform="fridge",
            )


class TestPushAndClick:
    def _subscribe_and_push(self, browser, ecosystem):
        site = find_site(ecosystem, "publisher")
        visit = browser.visit(site, 0.0)
        sub = visit.subscriptions[0]
        creative = None
        rng = RngFactory(1).stream("push")
        while creative is None:
            creative = ecosystem.sample_ad_message(
                sub.network_name, "desktop", rng
            )
        browser.fcm.send(sub.endpoint, creative, now_min=2.0)
        delivery = browser.fcm.deliver(sub.endpoint, now_min=3.0)[0]
        return browser.receive_push(delivery, 3.0)

    def test_receive_push_shows_notification(self, browser, small_ecosystem):
        notification = self._subscribe_and_push(browser, small_ecosystem)
        assert browser.events.count(EventKind.NOTIFICATION_SHOWN) == 1
        assert notification.title == notification.delivery.creative.title
        # SW fetched the ad config when handling the push.
        assert browser.events.count(EventKind.SW_NETWORK_REQUEST) >= 1

    def test_click_produces_landing_or_crash(self, browser, small_ecosystem):
        notification = self._subscribe_and_push(browser, small_ecosystem)
        outcome = browser.click_notification(notification, 3.1)
        assert browser.events.count(EventKind.NOTIFICATION_CLICKED) == 1
        if outcome.valid:
            assert outcome.landing_page is not None
            assert outcome.chain is not None
            assert browser.events.count(EventKind.TAB_CRASHED) == 0
        else:
            assert outcome.crashed
            assert browser.events.count(EventKind.TAB_CRASHED) == 1

    def test_click_sends_tracking_request(self, browser, small_ecosystem):
        notification = self._subscribe_and_push(browser, small_ecosystem)
        outcome = browser.click_notification(notification, 3.1)
        purposes = {r.purpose for r in outcome.sw_requests}
        assert "click_tracking" in purposes
        assert all(r.initiator == "service_worker" for r in outcome.sw_requests)

    def test_double_click_rejected(self, browser, small_ecosystem):
        notification = self._subscribe_and_push(browser, small_ecosystem)
        browser.click_notification(notification, 3.1)
        with pytest.raises(ValueError):
            browser.click_notification(notification, 3.2)

    def test_valid_click_rate_honored(self, small_ecosystem):
        valid = 0
        total = 40
        for i in range(total):
            browser = InstrumentedBrowser(
                small_ecosystem, FcmService(),
                rng=RngFactory(i).stream("rate"), platform="desktop",
            )
            notification = TestPushAndClick()._subscribe_and_push(
                browser, small_ecosystem
            )
            if browser.click_notification(notification, 3.1).valid:
                valid += 1
        expected = small_ecosystem.config.desktop_valid_click_rate
        assert abs(valid / total - expected) < 0.2

    def test_push_to_unknown_endpoint_raises(self, browser, small_ecosystem):
        other = InstrumentedBrowser(
            small_ecosystem, browser.fcm,
            rng=RngFactory(2).stream("o"), platform="desktop",
        )
        site = find_site(small_ecosystem, "publisher")
        visit = other.visit(site, 0.0)
        sub = visit.subscriptions[0]
        rng = RngFactory(1).stream("push")
        creative = small_ecosystem.sample_ad_message(sub.network_name, "desktop", rng)
        browser.fcm.send(sub.endpoint, creative, 1.0)
        delivery = browser.fcm.deliver(sub.endpoint, 2.0)[0]
        with pytest.raises(KeyError):
            browser.receive_push(delivery, 2.0)  # registered in `other`
