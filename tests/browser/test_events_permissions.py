"""Tests for the event log and permission manager."""

import pytest

from repro.browser.events import BrowserEvent, EventKind, EventLog
from repro.browser.permissions import PermissionManager, QuietUiPolicy
from repro.util.urls import Url
from repro.webenv.website import Website, plain_page_source


def prompting_site(host="www.site.com", **kwargs):
    defaults = dict(
        url=Url(host=host),
        kind="alert",
        page_source=plain_page_source("k"),
        seed_keyword="row",
        alert_family="breaking_news",
        requests_permission=True,
        opt_in_rate=0.5,
    )
    defaults.update(kwargs)
    return Website(**defaults)


class TestEventLog:
    def test_emit_and_query(self):
        log = EventLog()
        log.emit(EventKind.NAVIGATION, 1.0, url="https://x.com/")
        log.emit(EventKind.NOTIFICATION_SHOWN, 2.0, title="hi")
        assert len(log) == 2
        assert log.count(EventKind.NAVIGATION) == 1
        assert log.of_kind(EventKind.NOTIFICATION_SHOWN)[0].data["title"] == "hi"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            BrowserEvent(kind="made_up", time_min=0.0)

    def test_extend_from(self):
        a, b = EventLog(), EventLog()
        a.emit(EventKind.NAVIGATION, 1.0)
        b.emit(EventKind.REDIRECT, 2.0)
        a.extend_from(b)
        assert len(a) == 2


class TestPermissionManager:
    def test_auto_grant_and_persistence(self):
        log = EventLog()
        manager = PermissionManager(log)
        site = prompting_site()
        assert manager.request_permission(site, 0.0) == PermissionManager.GRANTED
        # Second request: persisted decision, no new prompt events.
        events_before = len(log)
        assert manager.request_permission(site, 5.0) == PermissionManager.GRANTED
        assert len(log) == events_before

    def test_denying_manager(self):
        manager = PermissionManager(EventLog(), auto_grant=False)
        assert (
            manager.request_permission(prompting_site(), 0.0)
            == PermissionManager.DENIED
        )

    def test_events_logged_in_order(self):
        log = EventLog()
        PermissionManager(log).request_permission(prompting_site(), 0.0)
        kinds = [e.kind for e in log]
        assert kinds == [
            EventKind.PERMISSION_REQUESTED,
            EventKind.PERMISSION_DECIDED,
        ]

    def test_revoke(self):
        manager = PermissionManager(EventLog())
        site = prompting_site()
        manager.request_permission(site, 0.0)
        manager.revoke(site.url.origin)
        assert manager.state(site.url.origin) is None

    def test_granted_origins(self):
        manager = PermissionManager(EventLog())
        manager.request_permission(prompting_site(), 0.0)
        assert list(manager.granted_origins) == ["https://www.site.com"]


class TestDoublePermission:
    def test_pre_prompt_logged_then_real_prompt(self):
        log = EventLog()
        manager = PermissionManager(log)
        site = prompting_site(double_permission=True)
        assert manager.request_permission(site, 0.0) == PermissionManager.GRANTED
        kinds = [e.kind for e in log]
        assert kinds[0] == EventKind.DOUBLE_PERMISSION_PROMPT
        assert EventKind.PERMISSION_REQUESTED in kinds

    def test_ignoring_pre_prompt_blocks_real_prompt(self):
        log = EventLog()
        manager = PermissionManager(log, interact_with_double_prompts=False)
        site = prompting_site(double_permission=True)
        assert manager.request_permission(site, 0.0) == PermissionManager.DENIED
        assert log.count(EventKind.PERMISSION_REQUESTED) == 0


class TestQuietUi:
    def test_disabled_never_suppresses(self):
        policy = QuietUiPolicy(enabled=False)
        assert not policy.suppresses(prompting_site(opt_in_rate=0.0), True)

    def test_no_crowd_data_no_suppression(self):
        # Chrome 80 as the paper found it: feature on, no data, blocks nothing.
        policy = QuietUiPolicy(enabled=True, crowd_coverage=0.0)
        site = prompting_site(opt_in_rate=0.01)
        manager = PermissionManager(EventLog(), quiet_ui=policy)
        assert (
            manager.request_permission(site, 0.0, has_crowd_data=False)
            == PermissionManager.GRANTED
        )

    def test_trained_feature_suppresses_low_optin(self):
        policy = QuietUiPolicy(enabled=True, optin_threshold=0.10)
        site = prompting_site(opt_in_rate=0.01)
        manager = PermissionManager(EventLog(), quiet_ui=policy)
        assert (
            manager.request_permission(site, 0.0, has_crowd_data=True)
            == PermissionManager.SUPPRESSED
        )

    def test_high_optin_not_suppressed(self):
        policy = QuietUiPolicy(enabled=True, optin_threshold=0.10)
        site = prompting_site(opt_in_rate=0.8)
        manager = PermissionManager(EventLog(), quiet_ui=policy)
        assert (
            manager.request_permission(site, 0.0, has_crowd_data=True)
            == PermissionManager.GRANTED
        )
