"""Tests for the browser network stack and request records."""

import pytest

from repro.browser.events import EventKind, EventLog
from repro.browser.network import NetworkRequest, NetworkStack
from repro.webenv.landing import RedirectChain
from repro.util.urls import Url


class TestNetworkRequest:
    def test_initiator_validated(self):
        with pytest.raises(ValueError):
            NetworkRequest(url=Url(host="a.com"), initiator="extension")

    def test_sw_requests_need_script_url(self):
        with pytest.raises(ValueError):
            NetworkRequest(url=Url(host="a.com"), initiator="service_worker")

    def test_page_request_defaults(self):
        request = NetworkRequest(url=Url(host="a.com"), initiator="page")
        assert request.purpose == "navigation"
        assert request.sw_script_url is None


class TestNetworkStack:
    def test_navigate_logs_and_records(self):
        log = EventLog()
        stack = NetworkStack(log)
        stack.navigate(Url(host="a.com", path="/x"), 1.0)
        assert log.count(EventKind.NAVIGATION) == 1
        assert len(stack.requests) == 1
        assert stack.requests[0].url.path == "/x"

    def test_follow_chain_logs_every_hop(self):
        log = EventLog()
        stack = NetworkStack(log)
        chain = RedirectChain(hops=(
            Url(host="click.net", path="/c"),
            Url(host="trk.net", path="/t"),
            Url(host="land.xyz", path="/offer"),
        ))
        landing = stack.follow_chain(chain, 2.0)
        assert landing.host == "land.xyz"
        assert log.count(EventKind.NAVIGATION) == 1
        assert log.count(EventKind.REDIRECT) == 2
        redirects = log.of_kind(EventKind.REDIRECT)
        assert redirects[0].data["from_url"] == "https://click.net/c"
        assert redirects[-1].data["to_url"] == "https://land.xyz/offer"

    def test_single_hop_chain_has_no_redirects(self):
        log = EventLog()
        stack = NetworkStack(log)
        chain = RedirectChain(hops=(Url(host="direct.com", path="/p"),))
        stack.follow_chain(chain, 0.0)
        assert log.count(EventKind.REDIRECT) == 0

    def test_record_does_not_emit_navigation(self):
        log = EventLog()
        stack = NetworkStack(log)
        request = NetworkRequest(
            url=Url(host="api.net"), initiator="service_worker",
            sw_script_url="https://p.com/sw.js", purpose="click_tracking",
        )
        stack.record(request, 0.0)
        assert log.count(EventKind.NAVIGATION) == 0
        assert stack.requests == [request]

    def test_requests_returns_copy(self):
        stack = NetworkStack(EventLog())
        stack.navigate(Url(host="a.com"), 0.0)
        snapshot = stack.requests
        snapshot.clear()
        assert len(stack.requests) == 1
