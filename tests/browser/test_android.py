"""Tests for the Android environment: tray, accessibility service, logcat."""

import pytest

from repro.browser.android import (
    AccessibilityService,
    AndroidDevice,
    AndroidNotificationTray,
)
from repro.browser.browser import InstrumentedBrowser
from repro.push.fcm import FcmService
from repro.util.rng import RngFactory


def mobile_browser(ecosystem, seed=1):
    return InstrumentedBrowser(
        ecosystem, FcmService(), rng=RngFactory(seed).stream("m"),
        platform="mobile",
    )


def mobile_publisher(ecosystem):
    for site in ecosystem.websites:
        if site.kind == "publisher" and site.requests_permission:
            return site
    raise AssertionError("no publisher")


def push_once(device, ecosystem):
    site = mobile_publisher(ecosystem)
    visit = device.browser.visit(site, 0.0)
    sub = visit.subscriptions[0]
    rng = RngFactory(3).stream("push")
    creative = None
    while creative is None:
        creative = ecosystem.sample_ad_message(sub.network_name, "mobile", rng)
    device.browser.fcm.send(sub.endpoint, creative, 1.0)
    delivery = device.browser.fcm.deliver(sub.endpoint, 2.0)[0]
    return device.receive_push(delivery, 2.0)


class TestTray:
    def test_post_and_drain(self, small_ecosystem):
        tray = AndroidNotificationTray()
        seen = []
        tray.on_state_changed(seen.append)
        tray.post("notification-object")
        assert len(tray) == 1
        assert seen == ["notification-object"]
        assert tray.take_pending() == ["notification-object"]
        assert len(tray) == 0


class TestAndroidDevice:
    def test_requires_mobile_browser(self, small_ecosystem):
        desktop = InstrumentedBrowser(
            small_ecosystem, FcmService(),
            rng=RngFactory(1).stream("d"), platform="desktop",
        )
        with pytest.raises(ValueError):
            AndroidDevice(browser=desktop)

    def test_push_lands_in_os_tray(self, small_ecosystem):
        device = AndroidDevice(browser=mobile_browser(small_ecosystem))
        push_once(device, small_ecosystem)
        assert len(device.tray) == 1

    def test_accessibility_taps_everything(self, small_ecosystem):
        device = AndroidDevice(browser=mobile_browser(small_ecosystem))
        push_once(device, small_ecosystem)
        outcomes = device.auto_interact(now_min=2.0, click_delay_min=0.05)
        assert len(outcomes) == 1
        assert device.accessibility.taps == 1
        assert len(device.tray) == 0
        # Tapping twice does nothing new.
        assert device.auto_interact(2.1, 0.05) == []

    def test_logcat_mirrors_events(self, small_ecosystem):
        device = AndroidDevice(browser=mobile_browser(small_ecosystem))
        push_once(device, small_ecosystem)
        device.auto_interact(2.0, 0.05)
        assert len(device.logcat.lines) == len(device.browser.events)
        assert any("notification_shown" in line for line in device.logcat.lines)

    def test_mobile_click_validity_rate_is_low(self, small_ecosystem):
        # The paper's mobile crawl lost ~70% of clicks to missing landings.
        valid = 0
        total = 40
        for i in range(total):
            device = AndroidDevice(browser=mobile_browser(small_ecosystem, seed=i))
            push_once(device, small_ecosystem)
            outcomes = device.auto_interact(2.0, 0.05)
            valid += sum(1 for o in outcomes if o.valid)
        rate = valid / total
        expected = small_ecosystem.config.mobile_valid_click_rate
        assert abs(rate - expected) < 0.2
