"""Tests for crawler seeding (Table 1 mechanics)."""

from repro.crawler.seeds import discover_seeds
from repro.webenv.adnetworks import ALL_SEEDS


class TestDiscoverSeeds:
    def test_rows_cover_all_19_seeds(self, small_discovery):
        assert len(small_discovery.rows) == len(ALL_SEEDS) == 19

    def test_counts_match_generator(self, small_ecosystem, small_discovery):
        config = small_ecosystem.config
        for spec in ALL_SEEDS:
            row = small_discovery.row(spec.name)
            assert row.urls_found == config.scaled(spec.paper_urls)
            assert row.npr_count == min(
                row.urls_found, config.scaled(spec.paper_nprs)
            )

    def test_totals(self, small_discovery, small_ecosystem):
        config = small_ecosystem.config
        expected_urls = sum(config.scaled(s.paper_urls) for s in ALL_SEEDS)
        assert small_discovery.total_urls == expected_urls
        assert small_discovery.total_nprs <= small_discovery.total_urls

    def test_npr_sites_all_prompt(self, small_discovery):
        assert all(s.requests_permission for s in small_discovery.npr_sites())

    def test_npr_domains_distinct_etld1(self, small_discovery):
        domains = small_discovery.npr_domains()
        assert len(domains) <= len(small_discovery.npr_sites())
        assert all("www." not in d for d in domains)

    def test_seed_sites_unique(self, small_discovery):
        urls = [str(s.url) for s in small_discovery.seed_sites]
        assert len(urls) == len(set(urls))

    def test_unknown_row_raises(self, small_discovery):
        import pytest

        with pytest.raises(KeyError):
            small_discovery.row("NotATable1Row")
