"""Tests for crawl scheduling, second-wave discovery, and harvesting."""

import pytest

from repro.crawler.harvest import run_full_crawl
from repro.crawler.scheduler import CrawlScheduler
from repro.util.rng import RngFactory


class TestScheduler:
    def test_second_wave_sites_created(self, small_dataset):
        stats = small_dataset.desktop_stats
        assert stats.discovered_landing_urls > 0
        assert stats.second_wave_urls <= stats.discovered_landing_urls

    def test_stats_consistency(self, small_dataset):
        for stats in (small_dataset.desktop_stats, small_dataset.mobile_stats):
            assert stats.npr_urls <= stats.visited_urls
            assert stats.granted_urls == stats.npr_urls  # auto-grant
            assert stats.registered_sw_urls <= stats.npr_urls
            assert stats.notifications_valid <= stats.notifications_collected

    def test_invalid_platform(self, small_ecosystem):
        with pytest.raises(ValueError):
            CrawlScheduler(
                small_ecosystem, platform="vr", rng=RngFactory(1).stream("x")
            )


class TestHarvest:
    def test_dataset_summary_keys(self, small_dataset):
        summary = small_dataset.summary()
        for key in ("seed_urls", "npr_urls", "collected_wpns", "valid_wpns",
                    "desktop_wpns", "mobile_wpns", "landing_domains"):
            assert key in summary

    def test_valid_subset(self, small_dataset):
        assert len(small_dataset.valid_records) <= len(small_dataset.records)
        assert all(r.valid for r in small_dataset.valid_records)

    def test_platforms_partition(self, small_dataset):
        desktop = small_dataset.records_for("desktop")
        mobile = small_dataset.records_for("mobile")
        assert len(desktop) + len(mobile) == len(small_dataset.records)
        assert desktop and mobile

    def test_wpn_ids_unique(self, small_dataset):
        ids = [r.wpn_id for r in small_dataset.records]
        assert len(ids) == len(set(ids))

    def test_desktop_validity_exceeds_mobile(self, small_dataset):
        # Paper: 77% desktop vs ~30% mobile clicks reach a landing page.
        def rate(platform):
            records = small_dataset.records_for(platform)
            return sum(r.valid for r in records) / len(records)

        assert rate("desktop") > rate("mobile") + 0.2

    def test_latency_pilot_data_present(self, small_dataset):
        latencies = small_dataset.first_latencies_min
        assert latencies
        within = sum(1 for l in latencies if l <= 15.0) / len(latencies)
        assert within > 0.9  # paper: 98% within 15 minutes

    def test_requires_config_or_ecosystem(self):
        with pytest.raises(ValueError):
            run_full_crawl()

    def test_run_without_mobile(self, small_config):
        dataset = run_full_crawl(config=small_config, run_mobile=False)
        assert dataset.records_for("mobile") == []
        assert dataset.records_for("desktop")

    def test_sw_requests_from_both_platforms(self, small_dataset):
        assert small_dataset.sw_requests
        assert all(
            r.initiator == "service_worker" for r in small_dataset.sw_requests
        )
