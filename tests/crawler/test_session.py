"""Tests for container sessions: timing policy and record production."""

import pytest

from repro.crawler.session import ContainerSession
from repro.push.fcm import FcmService
from repro.util.rng import RngFactory


def make_session(ecosystem, site, platform="desktop", seed=1, start=0.0):
    return ContainerSession(
        ecosystem=ecosystem,
        fcm=FcmService(),
        site=site,
        platform=platform,
        rng=RngFactory(seed).stream("session"),
        start_min=start,
    )


def active_publisher(ecosystem):
    for site in ecosystem.websites:
        if site.kind == "publisher" and site.requests_permission and site.active_notifier:
            return site
    raise AssertionError("no active publisher")


def inactive_site(ecosystem):
    for site in ecosystem.websites:
        if site.requests_permission and not site.active_notifier:
            return site
    raise AssertionError("none found")


class TestOnlineWindows:
    def test_within_live_window_is_immediate(self, small_ecosystem):
        session = make_session(small_ecosystem, active_publisher(small_ecosystem))
        config = small_ecosystem.config
        t = config.permission_wait_min + 2.0
        assert session.next_online_min(t) == t

    def test_after_live_window_waits_for_resume(self, small_ecosystem):
        session = make_session(small_ecosystem, active_publisher(small_ecosystem))
        config = small_ecosystem.config
        t = config.permission_wait_min + config.live_window_min + 5.0
        delivered = session.next_online_min(t)
        assert delivered > t
        assert (delivered - session.start_min) % config.resume_every_min == 0

    def test_inside_resume_window_is_immediate(self, small_ecosystem):
        session = make_session(small_ecosystem, active_publisher(small_ecosystem))
        config = small_ecosystem.config
        t = config.resume_every_min + config.resume_window_min / 2
        assert session.next_online_min(t) == t

    def test_never_beyond_study_end(self, small_ecosystem):
        session = make_session(small_ecosystem, active_publisher(small_ecosystem))
        config = small_ecosystem.config
        t = config.study_minutes - 1.0
        assert session.next_online_min(t) <= config.study_minutes


class TestRun:
    def test_inactive_site_produces_nothing(self, small_ecosystem):
        result = make_session(small_ecosystem, inactive_site(small_ecosystem)).run()
        assert result.records == []
        assert result.requested_permission

    def test_active_publisher_produces_records(self, small_ecosystem):
        result = make_session(small_ecosystem, active_publisher(small_ecosystem)).run()
        assert result.records
        for record in result.records:
            assert record.platform == "desktop"
            assert record.source_url == str(result.site.url)
            assert record.title
            assert record.shown_at_min >= record.sent_at_min
            if record.valid:
                assert record.landing_url is not None
                assert record.redirect_hops
            else:
                assert record.landing_url is None

    def test_records_have_consistent_truth(self, small_ecosystem):
        result = make_session(small_ecosystem, active_publisher(small_ecosystem)).run()
        for record in result.records:
            if record.truth.campaign_id is not None:
                campaign = small_ecosystem.campaign(record.truth.campaign_id)
                assert record.truth.malicious == campaign.malicious
                assert record.truth.kind == "ad"
            else:
                assert not record.truth.malicious

    def test_leads_only_from_valid_landings(self, small_ecosystem):
        result = make_session(small_ecosystem, active_publisher(small_ecosystem)).run()
        valid = sum(1 for r in result.records if r.valid)
        assert len(result.landing_leads) == valid

    def test_first_latency_is_send_latency(self, small_ecosystem):
        result = make_session(small_ecosystem, active_publisher(small_ecosystem)).run()
        if result.first_latency_min is not None:
            assert result.first_latency_min >= 0.0

    def test_sw_requests_collected(self, small_ecosystem):
        result = make_session(small_ecosystem, active_publisher(small_ecosystem)).run()
        assert result.sw_requests
        assert all(r.initiator == "service_worker" for r in result.sw_requests)

    def test_mobile_session_uses_android_path(self, small_ecosystem):
        site = active_publisher(small_ecosystem)
        session = make_session(small_ecosystem, site, platform="mobile")
        result = session.run()
        assert session.device is not None
        assert session.device.accessibility.taps == len(result.records)

    def test_alert_repeats_happen(self, small_ecosystem):
        # With repeat rate > 0, an alert-heavy site eventually resends a
        # creative verbatim.
        for site in small_ecosystem.websites:
            if site.kind == "alert" and site.requests_permission:
                break
        repeats = 0
        for seed in range(12):
            site2 = site
            from dataclasses import replace

            site2 = replace(site, active_notifier=True)
            result = make_session(small_ecosystem, site2, seed=seed).run()
            titles = [r.title for r in result.records]
            if len(titles) != len(set(titles)):
                repeats += 1
        assert repeats > 0
