"""Tests for the second-wave crawl (click-discovered landing URLs)."""

import pytest

from repro import paper_scenario, run_full_crawl
from repro.crawler.scheduler import CrawlScheduler
from repro.crawler.seeds import discover_seeds
from repro.util.rng import RngFactory
from repro.webenv.generator import generate_ecosystem


class TestSecondWave:
    def test_discovered_records_exist(self, small_dataset):
        seed_urls = {str(s.url) for s in small_dataset.ecosystem.websites}
        discovered = [
            r for r in small_dataset.records if r.source_url not in seed_urls
        ]
        # Click-discovered landing pages that prompted also pushed to us.
        assert discovered
        # They are publisher-style subscriptions on real networks.
        assert all(r.network_name is not None for r in discovered)

    def test_second_wave_stats_bounded(self, small_dataset):
        for stats in (small_dataset.desktop_stats, small_dataset.mobile_stats):
            assert stats.second_wave_urls <= stats.discovered_landing_urls

    def test_landing_prompt_rate_near_config(self):
        ecosystem = generate_ecosystem(paper_scenario(seed=19, scale=0.02))
        rng = RngFactory(19).stream("prompt-rate")
        domains = [f"probe-{i}.xyz" for i in range(800)]
        prompting = sum(ecosystem.landing_prompts(d) for d in domains)
        expected = ecosystem.config.landing_npr_rate
        assert abs(prompting / len(domains) - expected) < 0.05

    def test_landing_prompt_decision_cached(self):
        ecosystem = generate_ecosystem(paper_scenario(seed=19, scale=0.02))
        first = ecosystem.landing_prompts("stable-probe.xyz")
        for _ in range(5):
            assert ecosystem.landing_prompts("stable-probe.xyz") == first

    def test_second_wave_sites_marked(self, small_ecosystem):
        scheduler = CrawlScheduler(
            small_ecosystem, platform="desktop",
            rng=RngFactory(77).stream("sw"),
        )
        discovery = discover_seeds(small_ecosystem)
        results = scheduler.crawl(discovery.npr_sites()[:40])
        second_wave = [
            r for r in results if r.site.discovered_via_click
        ]
        for result in second_wave:
            assert result.site.kind == "publisher"
            assert result.site.seed_keyword == "(discovered-via-click)"


class TestEmulatedMobileCrawl:
    def test_emulator_crawl_sees_less_abuse(self):
        from repro.crawler.mobile import MobileCrawler
        from repro.crawler.seeds import discover_seeds

        ecosystem = generate_ecosystem(paper_scenario(seed=31, scale=0.03))
        discovery = discover_seeds(ecosystem)

        def malicious_share(real_device):
            crawler = MobileCrawler(
                ecosystem, RngFactory(31).stream(f"mob-{real_device}"),
                real_device=real_device,
            )
            records = [
                r for result in crawler.crawl(discovery) for r in result.records
            ]
            ads = [r for r in records if r.truth.kind == "ad"]
            if not ads:
                return 0.0
            return sum(r.truth.malicious for r in ads) / len(ads)

        real = malicious_share(True)
        emulated = malicious_share(False)
        # The paper's observation, end to end: emulators get served far
        # fewer malicious mobile WPNs.
        assert real > emulated
