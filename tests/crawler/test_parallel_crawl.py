"""Worker-count invariance of the sharded crawl engine.

The engine's contract is byte-identity: the serialized dataset, the crawl
stats, and the full downstream PushAdMiner summary must not change with the
number of crawl workers or the shard size. These tests also pin the
regression that motivated per-session id derivation — a process-global WPN
counter once made back-to-back crawls of the same scenario disagree on
``wpn_id`` while every other field matched.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro import PushAdMiner, paper_scenario, run_full_crawl

SEED = 11
SCALE = 0.02


def _dataset_bytes(dataset) -> str:
    """Canonical serialization of every record, id included."""
    return json.dumps(
        [dataclasses.asdict(r) for r in dataset.records], sort_keys=True
    )


def _stats_bytes(dataset) -> str:
    return json.dumps(
        [
            dataclasses.asdict(dataset.desktop_stats),
            dataclasses.asdict(dataset.mobile_stats),
        ],
        sort_keys=True,
    )


def _miner_summary(dataset):
    return PushAdMiner.for_dataset(dataset).run(dataset.valid_records).summary()


@pytest.fixture(scope="module")
def serial_dataset():
    return run_full_crawl(
        config=paper_scenario(seed=SEED, scale=SCALE), crawl_workers=1
    )


class TestBackToBackDeterminism:
    def test_repeated_crawls_are_byte_identical(self, serial_dataset):
        # Regression: a process-global WPN counter kept ticking across
        # crawls, so a second crawl in the same interpreter minted
        # different wpn_ids. Ids now derive from (platform, url, index).
        again = run_full_crawl(config=paper_scenario(seed=SEED, scale=SCALE))
        assert _dataset_bytes(again) == _dataset_bytes(serial_dataset)
        assert _stats_bytes(again) == _stats_bytes(serial_dataset)

    def test_wpn_ids_derive_from_session_not_process(self, serial_dataset):
        from repro.crawler.session import session_key

        for record in serial_dataset.records[:50]:
            key = session_key(record.platform, record.source_url)
            assert record.wpn_id.startswith(f"wpn-{key}-")


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_dataset_and_stats_invariant(self, serial_dataset, workers):
        sharded = run_full_crawl(
            config=paper_scenario(seed=SEED, scale=SCALE),
            crawl_workers=workers,
            shard_size=3,
        )
        assert _dataset_bytes(sharded) == _dataset_bytes(serial_dataset)
        assert _stats_bytes(sharded) == _stats_bytes(serial_dataset)
        assert sharded.summary() == serial_dataset.summary()

    def test_both_platforms_covered(self, serial_dataset):
        platforms = {r.platform for r in serial_dataset.records}
        assert platforms == {"desktop", "mobile"}

    def test_downstream_summary_invariant(self, serial_dataset):
        sharded = run_full_crawl(
            config=paper_scenario(seed=SEED, scale=SCALE),
            crawl_workers=2,
            shard_size=4,
        )
        assert _miner_summary(sharded) == _miner_summary(serial_dataset)

    def test_shard_size_invariant(self, serial_dataset):
        odd_shards = run_full_crawl(
            config=paper_scenario(seed=SEED, scale=SCALE),
            crawl_workers=1,
            shard_size=1,
        )
        assert _dataset_bytes(odd_shards) == _dataset_bytes(serial_dataset)


class TestEngineUnits:
    def test_rejects_bad_workers(self, small_ecosystem):
        from repro.crawler.engine import CrawlEngine

        with pytest.raises(ValueError):
            CrawlEngine(small_ecosystem, workers=0)
        with pytest.raises(ValueError):
            CrawlEngine(small_ecosystem, shard_size=0)

    def test_rejects_duplicate_platforms(self, small_ecosystem):
        from repro.crawler.engine import CrawlEngine, PlatformWave

        engine = CrawlEngine(small_ecosystem)
        waves = [
            PlatformWave(platform="desktop", sites=()),
            PlatformWave(platform="desktop", sites=()),
        ]
        with pytest.raises(ValueError):
            engine.crawl(waves)

    def test_rejects_unknown_platform(self):
        from repro.crawler.engine import PlatformWave

        with pytest.raises(ValueError):
            PlatformWave(platform="vr", sites=())

    def test_wave_spans_recorded(self):
        from repro.obs import Tracer

        tracer = Tracer()
        run_full_crawl(
            config=paper_scenario(seed=SEED, scale=0.015), tracer=tracer
        )
        names = [s.name for s in tracer.root.walk()]
        assert "crawl.wave1" in names
        assert "crawl.wave2" in names
