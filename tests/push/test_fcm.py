"""Tests for the FCM-like push broker and subscriptions."""

import pytest

from repro.push.fcm import FcmService
from repro.push.subscription import PushSubscription
from repro.webenv.campaigns import MessageCreative


def creative(title="t"):
    return MessageCreative(
        title=title, body="b", landing_domain="l.com", landing_path="/p",
        landing_query="", campaign_id="cmp00001", family_name="survey_scam",
        malicious=True,
    )


def subscribe(fcm, origin="https://a.com", network="Ad-Maven"):
    return fcm.subscribe(
        origin=origin,
        source_url=f"{origin}/",
        sw_script_url=f"{origin}/sw.js",
        network_name=network,
        platform="desktop",
    )


class TestSubscription:
    def test_unique_endpoints_and_ids(self):
        fcm = FcmService()
        a, b = subscribe(fcm), subscribe(fcm, origin="https://b.com")
        assert a.endpoint != b.endpoint
        assert a.registration_id != b.registration_id

    def test_requires_network_or_alert_family(self):
        with pytest.raises(ValueError):
            PushSubscription(
                endpoint="e", registration_id="r", origin="https://a.com",
                source_url="https://a.com/", sw_script_url="s",
                network_name=None, platform="desktop",
            )

    def test_platform_validated(self):
        with pytest.raises(ValueError):
            PushSubscription(
                endpoint="e", registration_id="r", origin="https://a.com",
                source_url="https://a.com/", sw_script_url="s",
                network_name="X", platform="toaster",
            )

    def test_is_ad_subscription(self):
        fcm = FcmService()
        ad = subscribe(fcm)
        alert = fcm.subscribe(
            origin="https://n.com", source_url="https://n.com/",
            sw_script_url="s", network_name=None, platform="desktop",
            alert_family="breaking_news",
        )
        assert ad.is_ad_subscription and not alert.is_ad_subscription


class TestQueueing:
    def test_send_to_unknown_endpoint(self):
        with pytest.raises(KeyError):
            FcmService().send("ghost", creative(), 0.0)

    def test_deliver_unknown_endpoint(self):
        with pytest.raises(KeyError):
            FcmService().deliver("ghost", 0.0)

    def test_messages_queue_until_delivery(self):
        fcm = FcmService()
        sub = subscribe(fcm)
        fcm.send(sub.endpoint, creative("one"), now_min=5.0)
        fcm.send(sub.endpoint, creative("two"), now_min=20.0)
        assert fcm.pending(sub.endpoint, now_min=10.0) == 1
        assert fcm.pending(sub.endpoint, now_min=30.0) == 2

    def test_deliver_releases_only_already_sent(self):
        fcm = FcmService()
        sub = subscribe(fcm)
        fcm.send(sub.endpoint, creative("early"), now_min=5.0)
        fcm.send(sub.endpoint, creative("late"), now_min=50.0)
        batch = fcm.deliver(sub.endpoint, now_min=10.0)
        assert [d.creative.title for d in batch] == ["early"]
        assert fcm.pending(sub.endpoint, now_min=100.0) == 1

    def test_deliver_drains(self):
        fcm = FcmService()
        sub = subscribe(fcm)
        fcm.send(sub.endpoint, creative(), now_min=1.0)
        assert len(fcm.deliver(sub.endpoint, now_min=2.0)) == 1
        assert fcm.deliver(sub.endpoint, now_min=2.0) == []

    def test_latency_accounting(self):
        fcm = FcmService()
        sub = subscribe(fcm)
        fcm.send(sub.endpoint, creative(), now_min=3.0)
        delivery = fcm.deliver(sub.endpoint, now_min=10.0)[0]
        assert delivery.latency_min == 7.0
        assert delivery.subscription is sub

    def test_counters(self):
        fcm = FcmService()
        sub = subscribe(fcm)
        fcm.send(sub.endpoint, creative(), 0.0)
        fcm.send(sub.endpoint, creative(), 0.0)
        fcm.deliver(sub.endpoint, 1.0)
        assert fcm.total_sent == 2
        assert fcm.total_delivered == 2

    def test_per_endpoint_isolation(self):
        fcm = FcmService()
        a, b = subscribe(fcm), subscribe(fcm, origin="https://b.com")
        fcm.send(a.endpoint, creative(), 0.0)
        assert fcm.deliver(b.endpoint, 10.0) == []
        assert len(fcm.deliver(a.endpoint, 10.0)) == 1
