"""Property-based tests for the text model, metrics, and persistence."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.detector import rank_auc
from repro.core.records import WpnRecord, WpnTruth
from repro.core.textsim import SoftCosineModel
from repro.io import record_from_dict, record_to_dict

token = st.text(alphabet="abcdefg", min_size=1, max_size=5)
document = st.lists(token, min_size=1, max_size=8)
corpus_strategy = st.lists(document, min_size=2, max_size=12)


class TestTextSimProperties:
    @settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
    @given(corpus_strategy)
    def test_similarity_matrix_invariants(self, corpus):
        model = SoftCosineModel(dimensions=4).fit(corpus)
        sim = model.similarity_matrix(corpus)
        assert sim.shape == (len(corpus), len(corpus))
        assert np.allclose(sim, sim.T, atol=1e-9)
        assert (sim >= -1e-9).all() and (sim <= 1.0 + 1e-9).all()
        assert np.allclose(np.diag(sim), 1.0)

    @settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
    @given(corpus_strategy, st.integers(0, 10))
    def test_duplicate_documents_are_identical(self, corpus, position):
        index = position % len(corpus)
        corpus = corpus + [list(corpus[index])]
        model = SoftCosineModel(dimensions=4).fit(corpus)
        sim = model.similarity_matrix(corpus)
        assert sim[index, -1] == pytest.approx(1.0, abs=1e-9)

    @settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
    @given(corpus_strategy)
    def test_distance_complements_similarity(self, corpus):
        model = SoftCosineModel(dimensions=4).fit(corpus)
        dist = model.distance_matrix(corpus)
        assert (dist >= 0).all() and (dist <= 1.0 + 1e-9).all()
        assert np.allclose(np.diag(dist), 0.0)


class TestAucProperties:
    scores = st.lists(st.floats(0, 1, allow_nan=False), min_size=2, max_size=40)

    @settings(max_examples=50)
    @given(scores, st.integers(0, 2**30))
    def test_bounds(self, score_list, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 2, size=len(score_list))
        auc = rank_auc(np.array(score_list), labels)
        assert 0.0 <= auc <= 1.0

    @settings(max_examples=50)
    @given(scores, st.integers(0, 2**30))
    def test_complement_symmetry(self, score_list, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 2, size=len(score_list))
        if labels.sum() in (0, len(labels)):
            return
        forward = rank_auc(np.array(score_list), labels)
        flipped = rank_auc(-np.array(score_list), labels)
        assert forward + flipped == pytest.approx(1.0, abs=1e-9)


_text = st.text(alphabet="abc XYZ!?", min_size=0, max_size=20)


class TestIoProperties:
    @settings(max_examples=40)
    @given(
        _text, _text,
        st.sampled_from(["desktop", "mobile"]),
        st.booleans(),
        st.floats(0, 1e5, allow_nan=False),
    )
    def test_round_trip(self, title, body, platform, malicious, sent_at):
        record = WpnRecord(
            wpn_id="wpn0000001",
            platform=platform,
            source_url="https://www.src.com/",
            network_name=None if malicious else "Ad-Maven",
            sw_script_url="https://www.src.com/sw.js",
            title=title,
            body=body,
            icon_url="https://www.src.com/icons/x.png",
            sent_at_min=sent_at,
            shown_at_min=sent_at + 1.0,
            clicked_at_min=sent_at + 1.1,
            valid=True,
            landing_url="https://land.xyz/p?x=1",
            redirect_hops=("https://land.xyz/p?x=1",),
            visual_hash="vh",
            landing_ip="1.2.3.4",
            landing_registrant="r@x",
            truth=WpnTruth(
                kind="ad", family_name="survey_scam", category="survey scam",
                campaign_id="cmp00001", operation_id=None,
                malicious=malicious, is_one_off=False,
            ),
        )
        assert record_from_dict(record_to_dict(record)) == record
