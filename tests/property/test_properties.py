"""Property-based tests (hypothesis) on the core data structures."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adblock.rules import FilterList, parse_rule
from repro.core.clustering import AgglomerativeClusterer
from repro.core.silhouette import average_silhouette
from repro.core.urlsim import url_path_distance_matrix
from repro.util.graph import UnionFind
from repro.util.rng import RngFactory
from repro.util.textproc import jaccard_distance, tokenize_text, tokenize_url_path
from repro.util.domains import effective_second_level_domain
from repro.util.urls import Url

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
token = st.text(alphabet="abcdefghij", min_size=1, max_size=6)
token_set = st.frozensets(token, max_size=8)

host = st.builds(
    lambda labels, tld: ".".join(labels + [tld]),
    st.lists(st.text(alphabet="abcxyz", min_size=1, max_size=8), min_size=1, max_size=3),
    st.sampled_from(["com", "net", "xyz", "co.uk", "com.au"]),
)


@st.composite
def distance_matrix(draw, max_n=12):
    n = draw(st.integers(min_value=2, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    m = rng.random((n, n))
    m = (m + m.T) / 2
    np.fill_diagonal(m, 0.0)
    return m


# ----------------------------------------------------------------------
# Jaccard / URL distance
# ----------------------------------------------------------------------
class TestJaccardProperties:
    @given(token_set, token_set)
    def test_symmetry(self, a, b):
        assert jaccard_distance(set(a), set(b)) == jaccard_distance(set(b), set(a))

    @given(token_set)
    def test_identity(self, a):
        assert jaccard_distance(set(a), set(a)) == 0.0

    @given(token_set, token_set)
    def test_bounds(self, a, b):
        assert 0.0 <= jaccard_distance(set(a), set(b)) <= 1.0

    @given(st.lists(token_set, min_size=1, max_size=10))
    def test_matrix_matches_scalar(self, sets):
        matrix = url_path_distance_matrix(sets)
        for i in range(len(sets)):
            for j in range(len(sets)):
                expected = jaccard_distance(set(sets[i]), set(sets[j]))
                assert matrix[i, j] == pytest.approx(expected, abs=1e-9)


# ----------------------------------------------------------------------
# Union-find
# ----------------------------------------------------------------------
class TestUnionFindProperties:
    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=40))
    def test_components_partition(self, edges):
        uf = UnionFind(range(21))
        for a, b in edges:
            uf.union(a, b)
        comps = uf.components()
        seen = sorted(x for c in comps for x in c)
        assert seen == list(range(21))

    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=30))
    def test_union_order_irrelevant(self, edges):
        uf1, uf2 = UnionFind(range(16)), UnionFind(range(16))
        for a, b in edges:
            uf1.union(a, b)
        for a, b in reversed(edges):
            uf2.union(a, b)
        def canon(uf):
            return sorted(tuple(sorted(c)) for c in uf.components())
        assert canon(uf1) == canon(uf2)


# ----------------------------------------------------------------------
# Clustering
# ----------------------------------------------------------------------
class TestClusteringProperties:
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    @given(distance_matrix())
    def test_dendrogram_shape(self, dist):
        linkage = AgglomerativeClusterer().fit(dist)
        n = dist.shape[0]
        assert len(linkage.merges) == n - 1
        heights = linkage.heights()
        assert (np.diff(heights) >= -1e-9).all()
        assert heights.min() >= 0.0

    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    @given(distance_matrix(), st.floats(min_value=0.0, max_value=1.5))
    def test_cut_monotone_in_threshold(self, dist, t):
        linkage = AgglomerativeClusterer().fit(dist)
        low = linkage.cut(t)
        high = linkage.cut(t + 0.2)
        # Raising the threshold can only merge clusters, never split them.
        assert high.max() <= low.max()
        pairs = [(i, j) for i in range(len(low)) for j in range(i)]
        for i, j in pairs:
            if low[i] == low[j]:
                assert high[i] == high[j]

    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    @given(distance_matrix())
    def test_full_cut_single_cluster(self, dist):
        linkage = AgglomerativeClusterer().fit(dist)
        labels = linkage.cut(float(linkage.heights().max()) + 1e-6)
        assert labels.max() == 0

    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    @given(distance_matrix(max_n=10), st.integers(0, 1000))
    def test_silhouette_bounds(self, dist, seed):
        n = dist.shape[0]
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, max(2, n // 2), size=n)
        score = average_silhouette(dist, labels)
        assert -1.0 <= score <= 1.0


# ----------------------------------------------------------------------
# URLs and domains
# ----------------------------------------------------------------------
class TestUrlProperties:
    @given(host, st.sampled_from(["/", "/a/b", "/x.php"]),
           st.sampled_from(["", "a=1", "a=1&b=2"]))
    def test_parse_roundtrip(self, h, path, query):
        url = Url(host=h, path=path, query=query)
        assert Url.parse(str(url)) == url

    @given(host)
    def test_etld1_is_suffix(self, h):
        etld1 = effective_second_level_domain(h)
        assert h.endswith(etld1)
        assert effective_second_level_domain(etld1) == etld1

    @given(st.text(alphabet="abcXYZ $!.-", max_size=40))
    def test_tokenize_text_never_crashes(self, text):
        tokens = tokenize_text(text)
        assert all(t == t.lower() for t in tokens)

    @given(st.text(alphabet="abc/-_.?&=", max_size=40))
    def test_tokenize_url_path_never_crashes(self, path):
        if "?" in path:
            path, query = path.split("?", 1)
        else:
            query = ""
        tokens = tokenize_url_path("/" + path, query)
        assert all(tokens)


# ----------------------------------------------------------------------
# Filter rules
# ----------------------------------------------------------------------
class TestFilterRuleProperties:
    @given(st.text(alphabet="abc/|^*$@!=.,", max_size=30))
    def test_parse_never_crashes(self, line):
        parse_rule(line)

    @given(st.lists(st.sampled_from(
        ["/ads/", "||x.com^", "@@/ok/", "! c", "/a$domain=d.com", "/x*y|"]
    ), max_size=6), st.sampled_from(
        ["https://x.com/ads/1", "https://d.com/ok/", "https://other.net/"]
    ))
    def test_filterlist_decision_is_boolean(self, rules, url):
        filters = FilterList.parse("\n".join(rules))
        assert filters.should_block(url) in (True, False)


# ----------------------------------------------------------------------
# RNG
# ----------------------------------------------------------------------
class TestRngProperties:
    @given(st.integers(0, 2**31), st.text(alphabet="abc", min_size=1, max_size=8))
    def test_streams_reproducible(self, seed, name):
        a = RngFactory(seed).stream(name).random()
        b = RngFactory(seed).stream(name).random()
        assert a == b


# ----------------------------------------------------------------------
# Cross-validation against scipy's reference hierarchical clustering
# ----------------------------------------------------------------------
from scipy.cluster.hierarchy import fcluster
from scipy.cluster.hierarchy import linkage as scipy_linkage
from scipy.spatial.distance import squareform


class TestAgainstScipy:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(distance_matrix())
    def test_average_linkage_heights_match_scipy(self, dist):
        ours = AgglomerativeClusterer("average").fit(dist)
        reference = scipy_linkage(squareform(dist, checks=False), method="average")
        assert np.allclose(
            np.sort(ours.heights()), np.sort(reference[:, 2]), atol=1e-9
        )

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(distance_matrix(), st.floats(min_value=0.0, max_value=1.2))
    def test_flat_cuts_match_scipy(self, dist, threshold):
        ours = AgglomerativeClusterer("average").fit(dist).cut(threshold)
        reference_linkage = scipy_linkage(
            squareform(dist, checks=False), method="average"
        )
        reference = fcluster(reference_linkage, t=threshold, criterion="distance")
        # Same partition (up to label renaming): co-membership must agree.
        n = len(ours)
        for i in range(n):
            for j in range(i):
                assert (ours[i] == ours[j]) == (reference[i] == reference[j])

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(distance_matrix())
    def test_single_and_complete_match_scipy(self, dist):
        condensed = squareform(dist, checks=False)
        for method in ("single", "complete"):
            ours = AgglomerativeClusterer(method).fit(dist)
            reference = scipy_linkage(condensed, method=method)
            assert np.allclose(
                np.sort(ours.heights()), np.sort(reference[:, 2]), atol=1e-9
            )
