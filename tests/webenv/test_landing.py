"""Tests for landing pages, redirect chains, and hosting infrastructure."""

import pytest

from repro.util.rng import RngFactory
from repro.webenv.landing import (
    LandingInfrastructure,
    RedirectChain,
    RedirectChainBuilder,
    visual_signature,
)
from repro.util.urls import Url


class TestVisualSignature:
    def test_same_family_same_operation(self):
        assert visual_signature("survey_scam", "op1") == visual_signature(
            "survey_scam", "op1"
        )

    def test_differs_across_operations(self):
        assert visual_signature("survey_scam", "op1") != visual_signature(
            "survey_scam", "op2"
        )

    def test_differs_across_families(self):
        assert visual_signature("survey_scam", "op1") != visual_signature(
            "tech_support", "op1"
        )

    def test_standalone(self):
        assert visual_signature("x", None) == visual_signature("x", None)


class TestLandingInfrastructure:
    def test_registered_facts_win(self):
        infra = LandingInfrastructure(RngFactory(1).stream("infra"))
        infra.register("evil.xyz", "1.2.3.4", "reg@x")
        assert infra.ip_of("evil.xyz") == "1.2.3.4"
        assert infra.registrant_of("evil.xyz") == "reg@x"

    def test_lazy_allocation_is_stable(self):
        infra = LandingInfrastructure(RngFactory(1).stream("infra"))
        assert infra.ip_of("a.com") == infra.ip_of("a.com")
        assert infra.registrant_of("a.com") == infra.registrant_of("a.com")

    def test_distinct_domains_distinct_ips(self):
        infra = LandingInfrastructure(RngFactory(1).stream("infra"))
        ips = {infra.ip_of(f"d{i}.com") for i in range(30)}
        assert len(ips) > 25


class TestRedirectChain:
    def test_requires_hops(self):
        with pytest.raises(ValueError):
            RedirectChain(hops=())

    def test_click_and_landing(self):
        a, b = Url(host="t.com"), Url(host="l.com")
        chain = RedirectChain(hops=(a, b))
        assert chain.click_url == a
        assert chain.landing_url == b
        assert len(chain) == 2


class TestRedirectChainBuilder:
    def build(self):
        return RedirectChainBuilder(
            RngFactory(2).stream("redir"), {"Ad-Maven": "admaven.com"}
        )

    def test_ad_click_goes_through_tracker(self):
        landing = Url(host="evil.xyz", path="/x")
        chain = self.build().build("Ad-Maven", landing)
        assert chain.click_url.host == "click.admaven.com"
        assert chain.landing_url == landing
        assert 2 <= len(chain) <= 3

    def test_alert_click_is_direct(self):
        landing = Url(host="news.com", path="/story")
        chain = self.build().build(None, landing)
        assert len(chain) == 1
        assert chain.landing_url == landing

    def test_unknown_network_raises(self):
        with pytest.raises(KeyError):
            self.build().build("Nope", Url(host="x.com"))

    def test_extra_hop_rate(self):
        builder = self.build()
        lengths = [
            len(builder.build("Ad-Maven", Url(host="x.com"))) for _ in range(200)
        ]
        three_hop = sum(1 for n in lengths if n == 3)
        assert 0.25 < three_hop / 200 < 0.55
