"""Tests for domain generation and eTLD+1 extraction."""

import pytest

from repro.util.domains import (
    BENIGN_TLDS,
    SHADY_TLDS,
    effective_second_level_domain,
)
from repro.util.rng import RngFactory
from repro.webenv.domains import DomainFactory


class TestEffectiveSecondLevelDomain:
    @pytest.mark.parametrize(
        "host,expected",
        [
            ("example.com", "example.com"),
            ("www.example.com", "example.com"),
            ("a.b.c.example.com", "example.com"),
            ("example.co.uk", "example.co.uk"),
            ("news.example.co.uk", "example.co.uk"),
            ("shop.example.com.au", "example.com.au"),
            ("localhost", "localhost"),
        ],
    )
    def test_cases(self, host, expected):
        assert effective_second_level_domain(host) == expected

    def test_case_insensitive(self):
        assert effective_second_level_domain("WWW.Example.COM") == "example.com"

    def test_trailing_dot(self):
        assert effective_second_level_domain("www.example.com.") == "example.com"


class TestDomainFactory:
    def make(self, seed=1):
        return DomainFactory(RngFactory(seed).stream("domains"))

    def test_uniqueness(self):
        factory = self.make()
        names = [factory.benign() for _ in range(300)]
        names += [factory.shady() for _ in range(300)]
        assert len(names) == len(set(names))

    def test_benign_uses_benign_tlds(self):
        factory = self.make()
        for _ in range(50):
            domain = factory.benign()
            tld = domain.split(".", 1)[1]
            assert tld in BENIGN_TLDS

    def test_shady_uses_shady_tlds(self):
        factory = self.make()
        for _ in range(50):
            tld = factory.shady().rsplit(".", 1)[-1]
            assert tld in SHADY_TLDS

    def test_ad_network_domain_is_clean(self):
        assert self.make().ad_network("Ad-Maven") == "admaven.com"

    def test_deterministic(self):
        a = [self.make(3).benign() for _ in range(5)]
        b = [self.make(3).benign() for _ in range(5)]
        assert a == b

    def test_issued_count(self):
        factory = self.make()
        factory.benign()
        factory.shady()
        assert factory.issued_count() == 2

    def test_etld1_of_generated_benign_is_itself(self):
        factory = self.make()
        for _ in range(30):
            domain = factory.benign()
            assert effective_second_level_domain(f"www.{domain}") == domain
