"""Tests for content families and template filling."""

import pytest

from repro.util.rng import RngFactory
from repro.webenv.content import (
    ALERT_FAMILIES,
    BENIGN_AD_FAMILIES,
    FAMILIES,
    MALICIOUS_AD_FAMILIES,
    SLOT_VOCAB,
    ContentFamily,
    family_by_name,
    fill_template,
    one_off_creative,
)

_SLOTTED = __import__("re").compile(r"\{[a-z_]+\}")


def rng():
    return RngFactory(4).stream("content")


class TestFillTemplate:
    def test_fills_all_slots(self):
        text = fill_template("You won a {prize} in {city}!", rng())
        assert not _SLOTTED.search(text)
        assert "won" in text

    def test_unknown_slot_raises(self):
        with pytest.raises(KeyError):
            fill_template("{nonexistent_slot}", rng())

    def test_plain_text_unchanged(self):
        assert fill_template("no slots here", rng()) == "no slots here"


class TestFamilyRoster:
    def test_unique_names(self):
        names = [f.name for f in FAMILIES]
        assert len(names) == len(set(names))

    def test_partition(self):
        assert set(FAMILIES) == (
            set(MALICIOUS_AD_FAMILIES) | set(BENIGN_AD_FAMILIES) | set(ALERT_FAMILIES)
        )

    def test_all_template_slots_known(self):
        for family in FAMILIES:
            for template in family.titles + family.bodies + family.path_templates:
                for slot in _SLOTTED.findall(template):
                    assert slot[1:-1] in SLOT_VOCAB, (family.name, slot)

    def test_paper_attack_families_present(self):
        # The attack types the paper explicitly reports seeing.
        for name in ("survey_scam", "tech_support", "fake_paypal",
                     "fake_missed_call", "spoofed_im", "fake_delivery"):
            assert family_by_name(name).malicious

    def test_mobile_only_families(self):
        assert family_by_name("fake_missed_call").platforms == ("mobile",)
        assert "desktop" in family_by_name("tech_support").platforms

    def test_malicious_families_rotate_domains(self):
        assert all(f.duplicate_ads for f in MALICIOUS_AD_FAMILIES)

    def test_benign_duplicate_ad_lookalikes(self):
        # The paper's false-positive sources: jobs, horoscope, dating, welcome.
        for name in ("job_postings", "horoscope", "dating_ads", "welcome_thankyou"):
            family = family_by_name(name)
            assert family.duplicate_ads and not family.malicious

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError):
            family_by_name("nope")

    def test_path_templates_start_with_slash(self):
        for family in FAMILIES:
            for template in family.path_templates:
                assert template.startswith("/")


class TestValidation:
    def test_alert_cannot_be_malicious(self):
        with pytest.raises(ValueError):
            ContentFamily(
                name="x", kind="alert", malicious=True, category="x",
                titles=("t",), bodies=("b",), path_templates=("/p",),
                theme_tokens=("x",),
            )

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            ContentFamily(
                name="x", kind="spam", malicious=False, category="x",
                titles=("t",), bodies=("b",), path_templates=("/p",),
                theme_tokens=("x",),
            )

    def test_bad_variability(self):
        with pytest.raises(ValueError):
            ContentFamily(
                name="x", kind="ad", malicious=False, category="x",
                titles=("t",), bodies=("b",), path_templates=("/p",),
                theme_tokens=("x",), text_variability=1.5,
            )


class TestOneOffCreative:
    def test_one_offs_are_diverse(self):
        family = family_by_name("survey_scam")
        r = rng()
        creatives = {one_off_creative(family, r) for _ in range(50)}
        assert len(creatives) > 45

    def test_one_off_carries_theme(self):
        family = family_by_name("survey_scam")
        title, body = one_off_creative(family, rng())
        text = (title + " " + body).lower()
        assert any(token in text for token in family.theme_tokens)


class TestNewFamilies:
    def test_malvertising_classics_present(self):
        flash = family_by_name("fake_flash_update")
        locker = family_by_name("browser_locker")
        assert flash.malicious and locker.malicious
        assert flash.platforms == ("desktop",)
        assert "support-phone-number" in locker.page_signals

    def test_benign_additions_present(self):
        streaming = family_by_name("streaming_promo")
        coupons = family_by_name("coupon_deals")
        assert not streaming.malicious and not coupons.malicious
        assert coupons.duplicate_ads

    def test_every_family_has_page_signals(self):
        for family in FAMILIES:
            assert family.page_signals, family.name

    def test_spoofing_families_have_icon_brands(self):
        for name in ("fake_paypal", "fake_delivery", "spoofed_im"):
            assert family_by_name(name).icon_brands
