"""Tests for the repro.webenv.urls / repro.webenv.domains deprecation shims.

The shims warn exactly once per attribute (module-level ``__getattr__``
with a warned-set), so each attribute's first-touch behaviour is asserted
in a single test to keep ordering self-contained.
"""

import warnings

import pytest

from repro.util import domains as util_domains
from repro.util import urls as util_urls
from repro.webenv import domains as shim_domains
from repro.webenv import urls as shim_urls


class TestUrlShim:
    def test_warns_once_then_stays_silent(self):
        shim_urls._warned.discard("Url")
        with pytest.warns(DeprecationWarning, match="repro.util.urls"):
            first = shim_urls.Url
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            second = shim_urls.Url
        assert first is util_urls.Url
        assert second is util_urls.Url

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="nope"):
            shim_urls.nope

    def test_dir_lists_moved_names(self):
        assert "Url" in dir(shim_urls)


class TestDomainsShim:
    def test_warns_once_then_stays_silent(self):
        shim_domains._warned.discard("BENIGN_TLDS")
        with pytest.warns(DeprecationWarning, match="repro.util.domains"):
            first = shim_domains.BENIGN_TLDS
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            second = shim_domains.BENIGN_TLDS
        assert first is util_domains.BENIGN_TLDS
        assert second is util_domains.BENIGN_TLDS

    def test_warning_is_per_attribute(self):
        shim_domains._warned.discard("SHADY_TLDS")
        shim_domains._warned.discard("effective_second_level_domain")
        with pytest.warns(DeprecationWarning, match="SHADY_TLDS"):
            shim_domains.SHADY_TLDS
        # a different moved attribute warns again, independently
        with pytest.warns(DeprecationWarning, match="effective_second_level"):
            shim_domains.effective_second_level_domain

    def test_native_names_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert shim_domains.DomainFactory is not None

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            shim_domains.no_such_name

    def test_dir_lists_moved_and_native_names(self):
        listing = dir(shim_domains)
        assert "DomainFactory" in listing
        assert "MULTI_LABEL_SUFFIXES" in listing
