"""Tests for the Url value type."""

import pytest

from repro.util.urls import Url


class TestConstruction:
    def test_defaults(self):
        url = Url(host="example.com")
        assert str(url) == "https://example.com/"

    def test_requires_host(self):
        with pytest.raises(ValueError):
            Url(host="")

    def test_path_must_be_absolute(self):
        with pytest.raises(ValueError):
            Url(host="a.com", path="x")

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ValueError):
            Url(host="a.com", scheme="ftp")


class TestParse:
    def test_round_trip(self):
        text = "https://a.example.com/x/y?z=1&w=2"
        assert str(Url.parse(text)) == text

    def test_host_lowercased(self):
        assert Url.parse("https://EXAMPLE.com/").host == "example.com"

    def test_bare_host(self):
        url = Url.parse("http://example.com")
        assert url.path == "/" and url.query == ""

    def test_relative_rejected(self):
        with pytest.raises(ValueError):
            Url.parse("/just/a/path")

    def test_query_split(self):
        url = Url.parse("https://a.com/p?x=1")
        assert url.path == "/p" and url.query == "x=1"


class TestProperties:
    def test_is_secure(self):
        assert Url(host="a.com").is_secure
        assert not Url(host="a.com", scheme="http").is_secure

    def test_origin(self):
        assert Url(host="a.com", path="/x").origin == "https://a.com"

    def test_query_params_ordered(self):
        url = Url(host="a.com", query="b=2&a=1&flag")
        assert url.query_params() == [("b", "2"), ("a", "1"), ("flag", "")]

    def test_with_query(self):
        url = Url(host="a.com", path="/p").with_query({"x": "1"})
        assert str(url) == "https://a.com/p?x=1"

    def test_ordering_and_hashability(self):
        a, b = Url(host="a.com"), Url(host="b.com")
        assert a < b
        assert len({a, b, Url(host="a.com")}) == 2
