"""Tests for the scenario config and whole-ecosystem generator."""

import pytest

from repro.util.rng import RngFactory
from repro.webenv.adnetworks import ALL_SEEDS, seeds_by_name
from repro.webenv.generator import generate_ecosystem
from repro.webenv.scenario import ScenarioConfig, paper_scenario


class TestScenarioConfig:
    def test_defaults_valid(self):
        ScenarioConfig()

    def test_scaled(self):
        config = ScenarioConfig(scale=0.1)
        assert config.scaled(1000) == 100
        assert config.scaled(4) == 0

    def test_study_minutes(self):
        assert ScenarioConfig(study_days=2).study_minutes == 2 * 24 * 60

    @pytest.mark.parametrize("field,value", [
        ("scale", 0.0),
        ("study_days", 0),
        ("active_notifier_rate", 1.5),
        ("vt_late_rate", -0.1),
        ("campaigns_per_operation", (3, 2)),
    ])
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            ScenarioConfig(**{field: value})

    def test_paper_scenario_scales_campaigns(self):
        small = paper_scenario(scale=0.05)
        large = paper_scenario(scale=0.25)
        assert large.n_malicious_operations > small.n_malicious_operations
        assert large.n_benign_ad_campaigns > small.n_benign_ad_campaigns


class TestGenerateEcosystem:
    @pytest.fixture(scope="class")
    def eco(self):
        return generate_ecosystem(paper_scenario(seed=5, scale=0.02))

    def test_website_counts_match_scaled_table1(self, eco):
        config = eco.config
        by_seed = {}
        for site in eco.websites:
            by_seed.setdefault(site.seed_keyword, []).append(site)
        for spec in ALL_SEEDS:
            sites = by_seed.get(spec.name, [])
            assert len(sites) == config.scaled(spec.paper_urls)
            nprs = sum(1 for s in sites if s.requests_permission)
            assert nprs == min(len(sites), config.scaled(spec.paper_nprs))

    def test_search_engine_indexed_everything(self, eco):
        assert len(eco.search_engine) == len(eco.websites)

    def test_every_active_network_has_campaigns(self, eco):
        for name, spec in eco.networks.items():
            if spec.paper_nprs > 0:
                assert eco.campaigns_by_network.get(name), name

    def test_operations_share_infrastructure(self, eco):
        op = eco.operations[0]
        ips = {eco.infrastructure.ip_of(d) for d in op.shared_domains}
        assert ips <= set(op.ip_addresses)
        registrants = {eco.infrastructure.registrant_of(d) for d in op.shared_domains}
        assert registrants == {op.registrant}

    def test_campaign_lookup(self, eco):
        campaign = eco.campaigns[0]
        assert eco.campaign(campaign.campaign_id) is campaign
        with pytest.raises(KeyError):
            eco.operation("opXXXX")

    def test_sample_ad_message_platform_filter(self, eco):
        rng = RngFactory(1).stream("sample")
        for _ in range(50):
            message = eco.sample_ad_message("Ad-Maven", "mobile", rng)
            if message is None:
                continue
            family = eco.campaign(message.campaign_id).family
            assert "mobile" in family.platforms

    def test_abusive_network_serves_mostly_malicious(self, eco):
        rng = RngFactory(1).stream("sample2")
        def malicious_share(network):
            msgs = [eco.sample_ad_message(network, "desktop", rng) for _ in range(300)]
            msgs = [m for m in msgs if m]
            return sum(m.malicious for m in msgs) / len(msgs)
        assert malicious_share("Ad-Maven") > malicious_share("OneSignal")

    def test_landing_prompt_decision_is_stable(self, eco):
        first = eco.landing_prompts("some-landing.xyz")
        assert eco.landing_prompts("some-landing.xyz") == first

    def test_resolve_click_for_ad(self, eco):
        rng = RngFactory(1).stream("sample3")
        message = None
        while message is None:
            message = eco.sample_ad_message("Ad-Maven", "desktop", rng)
        chain, landing = eco.resolve_click(message, "Ad-Maven")
        assert landing.url.host == message.landing_domain
        assert chain.landing_url == landing.url
        assert landing.malicious == message.malicious
        assert landing.ip_address

    def test_determinism_across_builds(self):
        a = generate_ecosystem(paper_scenario(seed=5, scale=0.02))
        b = generate_ecosystem(paper_scenario(seed=5, scale=0.02))
        assert [str(s.url) for s in a.websites] == [str(s.url) for s in b.websites]
        assert [c.campaign_id for c in a.campaigns] == [c.campaign_id for c in b.campaigns]
        assert [c.landing_domains for c in a.campaigns] == [
            c.landing_domains for c in b.campaigns
        ]
