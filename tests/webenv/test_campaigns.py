"""Tests for advertiser campaigns and operations."""

import pytest

from repro.util.rng import RngFactory
from repro.webenv.campaigns import (
    AdCampaign,
    CampaignFactory,
    MessageCreative,
    make_alert_message,
)
from repro.webenv.content import family_by_name
from repro.webenv.domains import DomainFactory


@pytest.fixture
def factory():
    rngs = RngFactory(12)
    return CampaignFactory(
        rngs.stream("campaigns"), DomainFactory(rngs.stream("domains"))
    )


NETWORKS = {"Ad-Maven": 0.72, "OneSignal": 0.18, "PopAds": 0.78}
FAMILIES = {
    name: family_by_name(name)
    for name in ("survey_scam", "sweepstakes", "tech_support", "scareware",
                 "fake_paypal", "phishing_bank", "fake_delivery",
                 "fake_missed_call", "spoofed_im", "crypto_scam")
}


class TestMaliciousOperations:
    def test_operation_campaigns_share_domains(self, factory):
        campaigns = factory.malicious_operation_campaigns(NETWORKS, 4, FAMILIES)
        assert len(campaigns) == 4
        op_id = campaigns[0].operation_id
        assert all(c.operation_id == op_id for c in campaigns)
        all_domains = [set(c.landing_domains) for c in campaigns]
        shared = set.intersection(*all_domains) if len(all_domains) > 1 else set()
        union = set.union(*all_domains)
        operation = factory.operations[0]
        # every campaign draws mostly from the operation pool
        assert union & set(operation.shared_domains)

    def test_campaigns_are_malicious(self, factory):
        for campaign in factory.malicious_operation_campaigns(NETWORKS, 3, FAMILIES):
            assert campaign.malicious
            assert campaign.family.malicious

    def test_operation_metadata(self, factory):
        factory.malicious_operation_campaigns(NETWORKS, 2, FAMILIES)
        op = factory.operations[0]
        assert op.ip_addresses and op.shared_domains
        assert "@" in op.registrant

    def test_unique_campaign_ids(self, factory):
        campaigns = factory.malicious_operation_campaigns(NETWORKS, 5, FAMILIES)
        campaigns += factory.malicious_operation_campaigns(NETWORKS, 5, FAMILIES)
        ids = [c.campaign_id for c in campaigns]
        assert len(set(ids)) == len(ids)

    def test_campaign_slug_in_path(self, factory):
        for campaign in factory.malicious_operation_campaigns(NETWORKS, 3, FAMILIES):
            # campaign-specific offer slug prefixes the family path template
            assert campaign.path_template.startswith("/of")


class TestBenignCampaigns:
    def test_benign_flagging(self, factory):
        campaign = factory.benign_campaign(NETWORKS, family_by_name("shopping_deal"))
        assert not campaign.malicious
        assert campaign.operation_id is None

    def test_duplicate_ads_families_get_multiple_domains(self, factory):
        campaign = factory.benign_campaign(NETWORKS, family_by_name("job_postings"))
        assert len(campaign.landing_domains) >= 2


class TestMessageGeneration:
    def test_template_messages_reuse_campaign_variants(self, factory):
        campaign = factory.benign_campaign(NETWORKS, family_by_name("shopping_deal"))
        rng = RngFactory(5).stream("msgs")
        for _ in range(30):
            message = campaign.make_message(rng)
            if not message.is_one_off:
                assert message.title in campaign.title_variants
                assert message.body in campaign.body_variants
            assert message.landing_domain in campaign.landing_domains
            assert message.campaign_id == campaign.campaign_id

    def test_one_off_rate_roughly_matches_family(self, factory):
        campaign = factory.malicious_operation_campaigns(NETWORKS, 1, FAMILIES)[0]
        rng = RngFactory(5).stream("msgs")
        one_offs = sum(campaign.make_message(rng).is_one_off for _ in range(400))
        expected = campaign.family.text_variability
        assert abs(one_offs / 400 - expected) < 0.12

    def test_path_values_vary_but_names_fixed(self, factory):
        campaign = factory.benign_campaign(NETWORKS, family_by_name("shopping_deal"))
        rng = RngFactory(5).stream("msgs")
        a = campaign.make_message(rng)
        b = campaign.make_message(rng)
        names = lambda q: [p.split("=")[0] for p in q.split("&") if p]
        assert names(a.landing_query) == names(b.landing_query)


class TestAlertMessages:
    def test_lands_on_source(self):
        rng = RngFactory(5).stream("alerts")
        message = make_alert_message(
            family_by_name("weather_alert"), "mysite.com", rng
        )
        assert message.landing_domain == "mysite.com"
        assert message.campaign_id is None
        assert not message.malicious

    def test_rejects_ad_family(self):
        rng = RngFactory(5).stream("alerts")
        with pytest.raises(ValueError):
            make_alert_message(family_by_name("survey_scam"), "x.com", rng)


class TestValidation:
    def test_campaign_requires_domains(self):
        with pytest.raises(ValueError):
            AdCampaign(
                campaign_id="c1", family=family_by_name("shopping_deal"),
                network_names=("X",), landing_domains=(),
                path_template="/x", title_variants=("t",),
                body_variants=("b",), weight=1.0,
            )

    def test_campaign_requires_positive_weight(self):
        with pytest.raises(ValueError):
            AdCampaign(
                campaign_id="c1", family=family_by_name("shopping_deal"),
                network_names=("X",), landing_domains=("d.com",),
                path_template="/x", title_variants=("t",),
                body_variants=("b",), weight=0.0,
            )


class TestDomainRotation:
    def test_malicious_multi_domain_campaigns_rotate(self, factory):
        campaigns = factory.malicious_operation_campaigns(NETWORKS, 4, FAMILIES)
        rotating = [c for c in campaigns if len(c.landing_domains) > 1]
        assert rotating
        for campaign in rotating:
            assert campaign.rotation_period_min is not None
            assert campaign.rotation_period_min >= 7 * 24 * 60

    def test_benign_campaigns_do_not_rotate(self, factory):
        campaign = factory.benign_campaign(NETWORKS, family_by_name("job_postings"))
        assert campaign.rotation_period_min is None

    def test_active_domain_cycles_over_time(self, factory):
        campaign = factory.malicious_operation_campaigns(NETWORKS, 1, FAMILIES)[0]
        if campaign.rotation_period_min is None:
            return
        period = campaign.rotation_period_min
        seen = {campaign.active_domain(period * k + 1) for k in range(
            len(campaign.landing_domains))}
        assert seen == set(campaign.landing_domains)
        # Stable within one period.
        assert campaign.active_domain(1.0) == campaign.active_domain(period - 1)

    def test_timed_messages_prefer_active_domain(self, factory):
        campaign = factory.malicious_operation_campaigns(NETWORKS, 1, FAMILIES)[0]
        if campaign.rotation_period_min is None:
            return
        rng = RngFactory(8).stream("rotation")
        at = campaign.rotation_period_min * 0.5  # inside the first phase
        active = campaign.active_domain(at)
        hits = sum(
            campaign.make_message(rng, at_min=at).landing_domain == active
            for _ in range(200)
        )
        assert hits / 200 > 0.7

    def test_untimed_messages_spread_evenly(self, factory):
        campaign = factory.malicious_operation_campaigns(NETWORKS, 1, FAMILIES)[0]
        rng = RngFactory(8).stream("rotation2")
        domains = {campaign.make_message(rng).landing_domain for _ in range(200)}
        assert domains == set(campaign.landing_domains)
