"""The PR-2 deprecation shims are gone: imports fail loudly, not softly.

Replaces ``test_deprecation_shims.py`` — the one-release warn-once
``__getattr__`` re-export shims in ``repro.webenv`` were retired in PR 7,
so the old import paths must now raise instead of warning.
"""

import importlib

import pytest


class TestShimRemoval:
    def test_webenv_urls_module_is_gone(self):
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.webenv.urls")

    def test_domains_no_longer_reexports_util_names(self):
        import repro.webenv.domains as domains

        for name in (
            "BENIGN_TLDS",
            "MULTI_LABEL_SUFFIXES",
            "SHADY_TLDS",
            "effective_second_level_domain",
        ):
            with pytest.raises(AttributeError):
                getattr(domains, name)

    def test_domains_has_no_module_getattr_hook(self):
        import repro.webenv.domains as domains

        assert "__getattr__" not in vars(domains)

    def test_real_homes_still_export(self):
        from repro.util.domains import BENIGN_TLDS, SHADY_TLDS  # noqa: F401
        from repro.util.urls import Url  # noqa: F401
