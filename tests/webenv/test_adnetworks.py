"""Tests for the ad network roster (Table 1 transcription)."""

import pytest

from repro.webenv.adnetworks import (
    AD_NETWORKS,
    ALL_SEEDS,
    GENERIC_KEYWORDS,
    PAPER_TOTAL_NPRS,
    PAPER_TOTAL_URLS,
    seeds_by_name,
)


class TestRoster:
    def test_fifteen_networks(self):
        assert len(AD_NETWORKS) == 15

    def test_four_generic_keywords(self):
        assert len(GENERIC_KEYWORDS) == 4

    def test_totals_match_table1(self):
        assert sum(s.paper_urls for s in ALL_SEEDS) == PAPER_TOTAL_URLS == 87_622
        assert sum(s.paper_nprs for s in ALL_SEEDS) == PAPER_TOTAL_NPRS == 5_849

    def test_admaven_row(self):
        spec = seeds_by_name()["Ad-Maven"]
        assert (spec.paper_urls, spec.paper_nprs) == (49_769, 1_168)

    def test_onesignal_has_most_nprs(self):
        top = max(ALL_SEEDS, key=lambda s: s.paper_nprs)
        assert top.name == "OneSignal"

    def test_npr_rate(self):
        spec = seeds_by_name()["OneSignal"]
        assert spec.npr_rate == pytest.approx(2_933 / 11_317)

    def test_zero_url_guard(self):
        from repro.webenv.adnetworks import AdNetworkSpec

        assert AdNetworkSpec("X", "x", 0, 0, 0.5).npr_rate == 0.0

    def test_unique_names_and_keywords(self):
        names = [s.name for s in ALL_SEEDS]
        keywords = [s.search_keyword for s in ALL_SEEDS]
        assert len(set(names)) == len(names)
        assert len(set(keywords)) == len(keywords)


class TestSdkMarkers:
    def test_marker_contains_search_keyword(self):
        for spec in ALL_SEEDS:
            assert spec.search_keyword in spec.sdk_marker

    def test_generic_marker_is_keyword_itself(self):
        for spec in GENERIC_KEYWORDS:
            assert spec.sdk_marker == spec.search_keyword

    def test_markers_do_not_cross_match(self):
        # No network's page marker may accidentally contain another seed's
        # keyword: that would double-count Table 1 rows.
        for spec in AD_NETWORKS:
            for other in ALL_SEEDS:
                if other.name == spec.name:
                    continue
                assert other.search_keyword not in spec.sdk_marker


class TestEconomics:
    def test_reengagement_platforms_are_low_ad_share(self):
        by_name = seeds_by_name()
        for name in ("OneSignal", "PushEngage", "iZooto"):
            assert by_name[name].ad_share <= 0.3

    def test_monetizers_are_high_ad_share_and_abusive(self):
        by_name = seeds_by_name()
        for name in ("Ad-Maven", "PopAds", "PropellerAds", "AdsTerra"):
            assert by_name[name].ad_share >= 0.9
            assert by_name[name].abuse_level >= 0.5
            # ... and clearly more abusive than the re-engagement platforms.
            assert by_name[name].abuse_level > by_name["OneSignal"].abuse_level
