"""Tests for websites, the code-search engine, and the popularity index."""

import pytest

from repro.util.rng import RngFactory
from repro.webenv.alexa import TOP_1M, PopularityIndex
from repro.webenv.search import CodeSearchEngine
from repro.util.urls import Url
from repro.webenv.website import (
    Website,
    alert_page_source,
    plain_page_source,
    publisher_page_source,
)


def make_site(host="www.a.com", **kwargs):
    defaults = dict(
        url=Url(host=host),
        kind="plain",
        page_source=plain_page_source("keyword"),
        seed_keyword="row",
    )
    defaults.update(kwargs)
    return Website(**defaults)


class TestWebsite:
    def test_publisher_requires_networks(self):
        with pytest.raises(ValueError):
            make_site(kind="publisher")

    def test_alert_requires_family(self):
        with pytest.raises(ValueError):
            make_site(kind="alert", page_source=alert_page_source("k"))

    def test_http_origin_cannot_prompt(self):
        with pytest.raises(ValueError):
            make_site(
                url=Url(host="a.com", scheme="http"), requests_permission=True
            )

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_site(kind="weird")

    def test_can_push(self):
        publisher = make_site(
            kind="publisher",
            network_names=("Ad-Maven",),
            page_source=publisher_page_source(("m",)),
            requests_permission=True,
        )
        assert publisher.can_push
        assert not make_site().can_push

    def test_opt_in_rate_bounds(self):
        with pytest.raises(ValueError):
            make_site(opt_in_rate=1.5)


class TestPageSources:
    def test_publisher_embeds_markers(self):
        source = publisher_page_source(("cdn.net.com/sdk/kw.js", "inline_kw"))
        assert "cdn.net.com/sdk/kw.js" in source
        assert "inline_kw" in source

    def test_alert_embeds_only_given_keyword(self):
        source = alert_page_source("pushmanagersubscribe")
        assert "pushmanagersubscribe" in source
        assert "NotificationrequestPermission" not in source

    def test_plain_mentions_keyword(self):
        assert "kw123" in plain_page_source("kw123")


class TestCodeSearchEngine:
    def test_finds_substring(self):
        engine = CodeSearchEngine()
        engine.index(make_site(page_source="<html>magic_token</html>"))
        assert engine.search("magic_token") == [Url(host="www.a.com")]

    def test_https_only(self):
        engine = CodeSearchEngine()
        engine.index(make_site(
            host="plain.com",
            url=Url(host="plain.com", scheme="http"),
            page_source="token",
        ))
        assert engine.search("token") == []
        assert engine.search("token", https_only=False) != []

    def test_no_match(self):
        engine = CodeSearchEngine()
        engine.index(make_site())
        assert engine.search("missing") == []

    def test_empty_keyword_raises(self):
        with pytest.raises(ValueError):
            CodeSearchEngine().search("")

    def test_results_sorted(self):
        engine = CodeSearchEngine()
        for host in ("www.z.com", "www.b.com", "www.m.com"):
            engine.index(make_site(host=host, url=Url(host=host), page_source="tok"))
        hosts = [u.host for u in engine.search("tok")]
        assert hosts == sorted(hosts)

    def test_distinct_urls_union(self):
        engine = CodeSearchEngine()
        engine.index(make_site(page_source="both one two"))
        results = engine.search_all(["one", "two"])
        merged = CodeSearchEngine.distinct_urls(results)
        assert len(merged) == 1

    def test_reindex_replaces(self):
        engine = CodeSearchEngine()
        engine.index(make_site(page_source="old"))
        engine.index(make_site(page_source="new"))
        assert len(engine) == 1
        assert engine.search("old") == []


class TestPopularityIndex:
    def test_rank_is_stable(self):
        index = PopularityIndex(RngFactory(1).stream("alexa"), ranked_fraction=1.0)
        assert index.assign("x.com") == index.assign("x.com")

    def test_ranked_fraction_zero(self):
        index = PopularityIndex(RngFactory(1).stream("alexa"), ranked_fraction=0.0)
        assert index.assign("x.com") is None
        assert index.rank_of("x.com") is None

    def test_ranked_fraction_close(self):
        index = PopularityIndex(RngFactory(1).stream("alexa"), ranked_fraction=0.36)
        domains = [f"d{i}.com" for i in range(2000)]
        ranked = sum(1 for d in domains if index.assign(d) is not None)
        assert abs(ranked / 2000 - 0.36) < 0.05

    def test_ranks_in_range(self):
        index = PopularityIndex(RngFactory(1).stream("alexa"), ranked_fraction=1.0)
        for i in range(200):
            rank = index.assign(f"d{i}.com")
            assert 1 <= rank <= TOP_1M

    def test_bucket_breakdown_sums(self):
        index = PopularityIndex(RngFactory(1).stream("alexa"), ranked_fraction=0.5)
        domains = [f"d{i}.com" for i in range(500)]
        for d in domains:
            index.assign(d)
        rows = index.bucket_breakdown(domains)
        assert sum(count for _, count in rows) == 500
        assert rows[-1][0] == "unranked"

    def test_tail_heavier_than_head(self):
        index = PopularityIndex(RngFactory(1).stream("alexa"), ranked_fraction=1.0)
        domains = [f"d{i}.com" for i in range(3000)]
        for d in domains:
            index.assign(d)
        rows = dict(index.bucket_breakdown(domains))
        assert rows["100K - 1M"] > rows["top 1K"]

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            PopularityIndex(RngFactory(1).stream("a"), ranked_fraction=2.0)
